// Package experiments reproduces the paper's evaluation (§V): Table I and
// Figures 3–6, plus the ablations motivated by §IV's design discussion.
// Each experiment generates its workload with internal/datagen, runs YAFIM
// on the Spark-substitute cluster and/or MRApriori on the Hadoop-substitute
// cluster, verifies the two produce identical itemsets, and reports the
// virtual-time series the paper plots.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/chaos"
	"yafim/internal/cluster"
	"yafim/internal/datagen"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/disteclat"
	"yafim/internal/exec"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
	"yafim/internal/rdd"
	"yafim/internal/rddeclat"
	"yafim/internal/yafim"
)

// Benchmark names one evaluation dataset with its paper support threshold.
type Benchmark struct {
	Name    string
	Support float64
	Gen     func(scale float64, seed int64) (*itemset.DB, error)
}

// PaperBenchmarks returns the four benchmark datasets of Table I with the
// support thresholds of Fig. 3: MushRoom (35%), T10I4D100K (0.25%),
// Chess (85%) and Pumsb_star (65%).
func PaperBenchmarks() []Benchmark {
	return []Benchmark{
		{Name: "MushRoom", Support: 0.35, Gen: datagen.MushroomLike},
		{Name: "T10I4D100K", Support: 0.0025, Gen: datagen.T10I4D100K},
		{Name: "Chess", Support: 0.85, Gen: datagen.ChessLike},
		{Name: "Pumsb_star", Support: 0.65, Gen: datagen.PumsbStarLike},
	}
}

// MedicalBenchmark returns the §V-D medical case dataset (Sup = 3%).
func MedicalBenchmark() Benchmark {
	return Benchmark{Name: "MedicalCases", Support: 0.03, Gen: datagen.MedicalCases}
}

// FindBenchmark resolves a benchmark by name across the paper set and the
// medical application.
func FindBenchmark(name string) (Benchmark, error) {
	for _, b := range append(PaperBenchmarks(), MedicalBenchmark()) {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("experiments: unknown benchmark %q", name)
}

// Env fixes the environment of an experiment run.
type Env struct {
	// Scale multiplies dataset transaction counts (1.0 = paper size).
	Scale float64
	// Seed drives all data generation.
	Seed int64
	// Spark and Hadoop are the two runtime profiles on the paper's hardware.
	Spark, Hadoop cluster.Config
	// Tasks is the task-granularity hint (input splits and reduce tasks);
	// 0 means twice the cluster's core count, the usual Spark guidance.
	Tasks int
}

// DefaultEnv is the paper's environment at full dataset scale.
func DefaultEnv() Env {
	return Env{
		Scale:  1.0,
		Seed:   2014,
		Spark:  cluster.PaperSpark(),
		Hadoop: cluster.PaperHadoop(),
	}
}

// stagePath names a database's staging location in the simulated DFS,
// avoiding a doubled extension when the dataset is named after a .dat file.
func stagePath(name string) string {
	return "/data/" + strings.TrimSuffix(name, ".dat") + ".dat"
}

func (e Env) tasks(cfg cluster.Config) int {
	if e.Tasks > 0 {
		return e.Tasks
	}
	return 2 * cfg.TotalCores()
}

// RunYAFIM stages db into a fresh DFS and mines it with YAFIM on the given
// cluster, returning the trace and the driver context (for cost inspection).
// Pass rdd.WithRecorder to capture telemetry; the recorder is also attached
// to the DFS so input I/O is counted. goCtx cancels the run cooperatively at
// the next task boundary (pass context.Background() to run to completion).
func RunYAFIM(goCtx context.Context, db *itemset.DB, support float64, cfg cluster.Config, tasks int,
	mineCfg yafim.Config, opts ...rdd.Option) (*apriori.Trace, *rdd.Context, error) {
	fs := dfs.New(cfg.Nodes)
	path := stagePath(db.Name)
	if _, err := dataset.Stage(fs, path, db); err != nil {
		return nil, nil, err
	}
	ctx, err := rdd.NewContext(cfg, append([]rdd.Option{rdd.WithContext(goCtx)}, opts...)...)
	if err != nil {
		return nil, nil, err
	}
	fs.SetRecorder(ctx.Recorder())
	mineCfg.MinSupport = support
	if mineCfg.NumPartitions == 0 {
		mineCfg.NumPartitions = tasks
	}
	trace, err := yafim.Mine(ctx, fs, path, mineCfg)
	if err != nil {
		return nil, nil, err
	}
	return trace, ctx, nil
}

// RunDistEclat stages db into a fresh DFS and mines it with Dist-Eclat on
// the given cluster. Pass rdd.WithRecorder to capture telemetry.
func RunDistEclat(goCtx context.Context, db *itemset.DB, support float64, cfg cluster.Config, tasks int,
	opts ...rdd.Option) (*apriori.Trace, *rdd.Context, error) {
	fs := dfs.New(cfg.Nodes)
	path := stagePath(db.Name)
	if _, err := dataset.Stage(fs, path, db); err != nil {
		return nil, nil, err
	}
	ctx, err := rdd.NewContext(cfg, append([]rdd.Option{rdd.WithContext(goCtx)}, opts...)...)
	if err != nil {
		return nil, nil, err
	}
	fs.SetRecorder(ctx.Recorder())
	trace, err := disteclat.Mine(ctx, fs, path, disteclat.Config{
		MinSupport:    support,
		NumPartitions: tasks,
	})
	if err != nil {
		return nil, nil, err
	}
	return trace, ctx, nil
}

// RunRDDEclat stages db into a fresh DFS and mines it with the
// equivalence-class-partitioned bitset Eclat engine on the given cluster.
// Pass rdd.WithRecorder to capture telemetry.
func RunRDDEclat(goCtx context.Context, db *itemset.DB, support float64, cfg cluster.Config, tasks int,
	mineCfg rddeclat.Config, opts ...rdd.Option) (*apriori.Trace, *rdd.Context, error) {
	fs := dfs.New(cfg.Nodes)
	path := stagePath(db.Name)
	if _, err := dataset.Stage(fs, path, db); err != nil {
		return nil, nil, err
	}
	ctx, err := rdd.NewContext(cfg, append([]rdd.Option{rdd.WithContext(goCtx)}, opts...)...)
	if err != nil {
		return nil, nil, err
	}
	fs.SetRecorder(ctx.Recorder())
	mineCfg.MinSupport = support
	if mineCfg.NumPartitions == 0 {
		mineCfg.NumPartitions = tasks
	}
	trace, err := rddeclat.Mine(ctx, fs, path, mineCfg)
	if err != nil {
		return nil, nil, err
	}
	return trace, ctx, nil
}

// RunMRApriori stages db into a fresh DFS and mines it with the MapReduce
// implementation on the given cluster. rec (may be nil) captures telemetry
// from the runner and the DFS; plan (may be nil) injects the chaos fault
// plan into the runner and the DFS.
func RunMRApriori(ctx context.Context, db *itemset.DB, support float64, cfg cluster.Config, tasks int,
	mineCfg mrapriori.Config, rec *obs.Recorder, plan *chaos.Plan) (*apriori.Trace, *mapreduce.Runner, error) {
	fs := dfs.New(cfg.Nodes)
	path := stagePath(db.Name)
	if _, err := dataset.Stage(fs, path, db); err != nil {
		return nil, nil, err
	}
	runner, err := mapreduce.NewRunner(fs, cfg)
	if err != nil {
		return nil, nil, err
	}
	runner.SetRecorder(rec)
	fs.SetRecorder(rec)
	if plan != nil {
		if err := runner.SetChaos(plan); err != nil {
			return nil, nil, err
		}
	}
	mineCfg.MinSupport = support
	if mineCfg.NumMapTasks == 0 {
		mineCfg.NumMapTasks = tasks
	}
	trace, err := mrapriori.MineContext(ctx, runner, fs, path, "/work", mineCfg)
	if err != nil {
		return nil, nil, err
	}
	return trace, runner, nil
}

// Comparison is one dataset mined by both engines, with verified-identical
// results — the unit of Fig. 3 and Fig. 6.
type Comparison struct {
	Dataset   string
	Support   float64
	DB        itemset.Stats
	YAFIM     *apriori.Trace
	MRApriori *apriori.Trace
}

// Speedup returns MRApriori's total time over YAFIM's.
func (c *Comparison) Speedup() float64 {
	y := c.YAFIM.TotalDuration()
	if y <= 0 {
		return 0
	}
	return float64(c.MRApriori.TotalDuration()) / float64(y)
}

// RunComparison mines one benchmark with both engines and verifies they
// found exactly the same frequent itemsets, returning the paired traces.
func RunComparison(ctx context.Context, b Benchmark, env Env) (*Comparison, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}
	yTrace, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark), yafim.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: yafim: %w", b.Name, err)
	}
	mTrace, _, err := RunMRApriori(ctx, db, b.Support, env.Hadoop, env.tasks(env.Hadoop), mrapriori.Config{}, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: mrapriori: %w", b.Name, err)
	}
	if !yTrace.Result.Equal(mTrace.Result) {
		return nil, fmt.Errorf("experiments: %s: YAFIM and MRApriori results differ", b.Name)
	}
	return &Comparison{
		Dataset:   b.Name,
		Support:   b.Support,
		DB:        db.ComputeStats(),
		YAFIM:     yTrace,
		MRApriori: mTrace,
	}, nil
}

// Table1Row is one row of the paper's Table I, as our generators realise it.
type Table1Row struct {
	Dataset         string
	NumItems        int
	NumTransactions int
	AvgLength       float64
}

// RunTable1 generates every benchmark dataset and reports its properties.
func RunTable1(env Env) ([]Table1Row, error) {
	var rows []Table1Row
	for _, b := range PaperBenchmarks() {
		db, err := b.Gen(env.Scale, env.Seed)
		if err != nil {
			return nil, err
		}
		st := db.ComputeStats()
		rows = append(rows, Table1Row{
			Dataset:         b.Name,
			NumItems:        st.NumItems,
			NumTransactions: st.NumTransactions,
			AvgLength:       st.AvgLength,
		})
	}
	return rows, nil
}

// Summary aggregates the per-benchmark speedups into the headline claim
// ("about 18x on average").
type Summary struct {
	Comparisons []*Comparison
}

// AverageSpeedup returns the arithmetic mean of per-dataset total-time
// speedups.
func (s *Summary) AverageSpeedup() float64 {
	if len(s.Comparisons) == 0 {
		return 0
	}
	total := 0.0
	for _, c := range s.Comparisons {
		total += c.Speedup()
	}
	return total / float64(len(s.Comparisons))
}

// RunSummary runs the full Fig. 3 comparison suite.
func RunSummary(ctx context.Context, env Env) (*Summary, error) {
	s := &Summary{}
	for _, b := range PaperBenchmarks() {
		if err := exec.ContextErr(ctx); err != nil {
			return nil, fmt.Errorf("experiments: summary: %w", err)
		}
		c, err := RunComparison(ctx, b, env)
		if err != nil {
			return nil, err
		}
		s.Comparisons = append(s.Comparisons, c)
	}
	return s, nil
}

// Sizeup is the Fig. 4 experiment for one dataset: total mining time as the
// dataset is replicated 1..N times with the core count fixed (48 in the
// paper).
type Sizeup struct {
	Dataset      string
	Replications []int
	YAFIM        []time.Duration
	MRApriori    []time.Duration
}

// RunSizeup replicates the benchmark dataset by each factor and mines it
// with both engines on a 48-core slice of the paper clusters.
func RunSizeup(ctx context.Context, b Benchmark, env Env, replications []int) (*Sizeup, error) {
	base, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}
	spark := env.Spark.WithTotalCores(48)
	hadoop := env.Hadoop.WithTotalCores(48)
	out := &Sizeup{Dataset: b.Name, Replications: replications}
	for _, times := range replications {
		if err := exec.ContextErr(ctx); err != nil {
			return nil, fmt.Errorf("experiments: sizeup %s: %w", b.Name, err)
		}
		db := base.Replicate(times)
		yTrace, _, err := RunYAFIM(ctx, db, b.Support, spark, env.tasks(spark), yafim.Config{})
		if err != nil {
			return nil, fmt.Errorf("experiments: sizeup %s x%d: %w", b.Name, times, err)
		}
		mTrace, _, err := RunMRApriori(ctx, db, b.Support, hadoop, env.tasks(hadoop), mrapriori.Config{}, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: sizeup %s x%d: %w", b.Name, times, err)
		}
		if !yTrace.Result.Equal(mTrace.Result) {
			return nil, fmt.Errorf("experiments: sizeup %s x%d: results differ", b.Name, times)
		}
		out.YAFIM = append(out.YAFIM, yTrace.TotalDuration())
		out.MRApriori = append(out.MRApriori, mTrace.TotalDuration())
	}
	return out, nil
}

// Speedup is the Fig. 5 experiment for one dataset: YAFIM total time as the
// node count grows with the dataset fixed.
type Speedup struct {
	Dataset   string
	Nodes     []int
	Cores     []int
	Durations []time.Duration
}

// Relative returns time(nodes[0]) / time(nodes[i]) for each point — the
// conventional speedup curve normalised to the smallest cluster.
func (s *Speedup) Relative() []float64 {
	out := make([]float64, len(s.Durations))
	for i, d := range s.Durations {
		if d > 0 {
			out[i] = float64(s.Durations[0]) / float64(d)
		}
	}
	return out
}

// RunSpeedup mines the benchmark with YAFIM at each node count (the paper
// uses 4, 6, 8, 10, 12 nodes of 8 cores). The dataset is replicated by the
// given factor first so that per-pass compute is large enough for node
// scaling to be visible above fixed scheduling overheads (replicate <= 1
// mines the base dataset).
func RunSpeedup(ctx context.Context, b Benchmark, env Env, nodes []int, replicate int) (*Speedup, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}
	if replicate > 1 {
		db = db.Replicate(replicate)
	}
	out := &Speedup{Dataset: b.Name, Nodes: nodes}
	for _, n := range nodes {
		if err := exec.ContextErr(ctx); err != nil {
			return nil, fmt.Errorf("experiments: speedup %s: %w", b.Name, err)
		}
		cfg := env.Spark.WithNodes(n)
		trace, _, err := RunYAFIM(ctx, db, b.Support, cfg, env.tasks(cfg), yafim.Config{})
		if err != nil {
			return nil, fmt.Errorf("experiments: speedup %s %dn: %w", b.Name, n, err)
		}
		out.Cores = append(out.Cores, cfg.TotalCores())
		out.Durations = append(out.Durations, trace.TotalDuration())
	}
	return out, nil
}
