package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/mrapriori"
	"yafim/internal/rddeclat"
	"yafim/internal/yafim"
)

// MatrixCell is one engine × support measurement of the engine matrix: the
// algorithm-representation comparison the ROADMAP grows the paper's
// two-engine result into. PeakShuffle is -1 for engines that materialise
// map output to the DFS instead of holding it shuffle-resident.
type MatrixCell struct {
	Engine      string
	Support     float64
	Duration    time.Duration
	Jobs        int
	PeakShuffle int64
	Frequent    int
}

// Matrix is the engine comparison for one benchmark across support levels.
type Matrix struct {
	Dataset string
	Cells   []MatrixCell
}

// RunMatrix mines the benchmark with every first-class engine — YAFIM
// (horizontal, hash tree), MRApriori (horizontal, MapReduce) and RDD-Eclat
// (vertical, bitsets) — at each support level, verifies all of them find
// identical frequent itemsets, and reports the virtual-cost profile of each
// cell.
func RunMatrix(ctx context.Context, b Benchmark, env Env, supports []float64) (*Matrix, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}
	out := &Matrix{Dataset: b.Name}
	for _, sup := range supports {
		var reference *apriori.Result
		add := func(engine string, res *apriori.Result, d time.Duration, jobs int, peak int64) error {
			if reference == nil {
				reference = res
			} else if !res.Equal(reference) {
				return fmt.Errorf("experiments: matrix %s: %s disagrees at sup=%v", b.Name, engine, sup)
			}
			out.Cells = append(out.Cells, MatrixCell{
				Engine: engine, Support: sup, Duration: d, Jobs: jobs,
				PeakShuffle: peak, Frequent: res.NumFrequent(),
			})
			return nil
		}

		yTrace, yCtx, err := RunYAFIM(ctx, db, sup, env.Spark, env.tasks(env.Spark), yafim.Config{})
		if err != nil {
			return nil, fmt.Errorf("experiments: matrix %s: yafim: %w", b.Name, err)
		}
		if err := add("YAFIM", yTrace.Result, yTrace.TotalDuration(),
			len(yCtx.Reports()), yCtx.ShufflePeakBytes()); err != nil {
			return nil, err
		}

		rTrace, rCtx, err := RunRDDEclat(ctx, db, sup, env.Spark, env.tasks(env.Spark), rddeclat.Config{})
		if err != nil {
			return nil, fmt.Errorf("experiments: matrix %s: rddeclat: %w", b.Name, err)
		}
		if err := add("RDD-Eclat", rTrace.Result, rTrace.TotalDuration(),
			len(rCtx.Reports()), rCtx.ShufflePeakBytes()); err != nil {
			return nil, err
		}

		mTrace, mRunner, err := RunMRApriori(ctx, db, sup, env.Hadoop, env.tasks(env.Hadoop),
			mrapriori.Config{}, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: matrix %s: mrapriori: %w", b.Name, err)
		}
		if err := add("MRApriori", mTrace.Result, mTrace.TotalDuration(),
			len(mRunner.Reports()), -1); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MatrixSupports returns the two minsup levels a benchmark's matrix runs
// at: the paper threshold and its double (a sparser lattice, shifting the
// balance from counting work toward fixed job overheads).
func MatrixSupports(b Benchmark) []float64 {
	return []float64{b.Support, 2 * b.Support}
}

// WriteMatrix renders the engine matrix.
func WriteMatrix(w io.Writer, m *Matrix) {
	fmt.Fprintf(w, "%s: engine matrix (algorithm × representation)\n", m.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tminsup\tvirt total\tjobs\tpeak shuffle\tfrequent")
	for _, c := range m.Cells {
		peak := "-"
		if c.PeakShuffle >= 0 {
			peak = fmt.Sprintf("%d B", c.PeakShuffle)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%s\t%d\t%s\t%d\n",
			c.Engine, c.Support, fmtDur(c.Duration), c.Jobs, peak, c.Frequent)
	}
	tw.Flush()
}
