package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestRunChaos verifies the chaos sweep's acceptance shape on one benchmark:
// results stay exact under faults (RunChaos errors otherwise), both engines
// pay a positive recovery cost, MRApriori's absolute restart cost exceeds
// YAFIM's lineage-recompute cost, and the mitigation counters are visible.
func TestRunChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep runs four full mining jobs")
	}
	b, err := FindBenchmark("MushRoom")
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunChaos(context.Background(), b, testEnv(), DefaultChaosParams(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*ChaosRun{&c.YAFIM, &c.MRApriori} {
		if r.RecoveryCost() <= 0 {
			t.Errorf("%s: recovery cost %v, want > 0", r.Engine, r.RecoveryCost())
		}
		if r.Counters.TaskRetries == 0 {
			t.Errorf("%s: no task retries recorded", r.Engine)
		}
		if r.Counters.StagesRerun == 0 {
			t.Errorf("%s: no stage reruns recorded", r.Engine)
		}
	}
	if c.MRApriori.RecoveryCost() <= c.YAFIM.RecoveryCost() {
		t.Errorf("mrapriori recovery %v should exceed yafim's %v",
			c.MRApriori.RecoveryCost(), c.YAFIM.RecoveryCost())
	}
	if c.MRApriori.Counters.ReReplicatedBlocks == 0 {
		t.Error("node crash should trigger DFS re-replication")
	}

	var sb strings.Builder
	WriteChaos(&sb, c)
	for _, want := range []string{"recovery cost", "mrapriori", "yafim", "blacklisted"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("chaos report missing %q:\n%s", want, sb.String())
		}
	}
}

// TestRunChaosDeterministic verifies the headline guarantee: the same seed
// reproduces byte-identical makespans and counters across independent runs.
func TestRunChaosDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep runs four full mining jobs")
	}
	b, err := FindBenchmark("Chess")
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunChaos(context.Background(), b, testEnv(), DefaultChaosParams(42))
	if err != nil {
		t.Fatal(err)
	}
	bb, err := RunChaos(context.Background(), b, testEnv(), DefaultChaosParams(42))
	if err != nil {
		t.Fatal(err)
	}
	var wa, wb strings.Builder
	WriteChaos(&wa, a)
	WriteChaos(&wb, bb)
	if wa.String() != wb.String() {
		t.Errorf("same seed diverged:\n--- run 1 ---\n%s--- run 2 ---\n%s",
			wa.String(), wb.String())
	}
}
