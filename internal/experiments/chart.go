package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of an ASCII chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// seriesGlyphs mark successive series on a chart.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// RenderChart draws the series as an ASCII scatter/line chart, the textual
// counterpart of the paper's figure panels. X positions are scaled to the
// chart width, Y to its height; the legend maps glyphs to series names.
func RenderChart(w io.Writer, title, xLabel, yLabel string, series []Series, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	fmt.Fprintf(w, "%s\n", title)

	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	if maxY <= 0 {
		maxY = 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int(s.Y[i]/maxY*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = glyph
		}
	}

	yTop := formatTick(maxY)
	pad := len(yTop)
	for r, line := range grid {
		label := strings.Repeat(" ", pad)
		switch r {
		case 0:
			label = yTop
		case height - 1:
			label = fmt.Sprintf("%*s", pad, "0")
		}
		fmt.Fprintf(w, "%s |%s|\n", label, line)
	}
	fmt.Fprintf(w, "%s  %s%s\n", strings.Repeat(" ", pad),
		formatTick(minX), fmt.Sprintf("%*s", width-len(formatTick(minX)), formatTick(maxX)))
	fmt.Fprintf(w, "%s  x: %s, y: %s\n", strings.Repeat(" ", pad), xLabel, yLabel)
	for si, s := range series {
		fmt.Fprintf(w, "%s  %c = %s\n", strings.Repeat(" ", pad), seriesGlyphs[si%len(seriesGlyphs)], s.Name)
	}
}

func formatTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// ComparisonChart renders a Fig. 3 / Fig. 6 panel: per-pass times of both
// engines in seconds.
func ComparisonChart(w io.Writer, c *Comparison) {
	y := Series{Name: "YAFIM"}
	m := Series{Name: "MRApriori"}
	for i, p := range c.YAFIM.Passes {
		y.X = append(y.X, float64(i+1))
		y.Y = append(y.Y, p.Duration.Seconds())
	}
	for i, p := range c.MRApriori.Passes {
		if p.Duration == 0 {
			continue
		}
		m.X = append(m.X, float64(i+1))
		m.Y = append(m.Y, p.Duration.Seconds())
	}
	RenderChart(w, fmt.Sprintf("%s (Sup = %g%%): per-pass execution time", c.Dataset, c.Support*100),
		"pass", "seconds", []Series{y, m}, 60, 12)
}

// SizeupChart renders a Fig. 4 panel.
func SizeupChart(w io.Writer, s *Sizeup) {
	y := Series{Name: "YAFIM"}
	m := Series{Name: "MRApriori"}
	for i, rep := range s.Replications {
		y.X = append(y.X, float64(rep))
		y.Y = append(y.Y, s.YAFIM[i].Seconds())
		m.X = append(m.X, float64(rep))
		m.Y = append(m.Y, s.MRApriori[i].Seconds())
	}
	RenderChart(w, fmt.Sprintf("%s: sizeup (48 cores)", s.Dataset),
		"replication of original data", "seconds", []Series{y, m}, 60, 12)
}

// SpeedupChart renders a Fig. 5 panel.
func SpeedupChart(w io.Writer, s *Speedup) {
	line := Series{Name: "YAFIM"}
	for i := range s.Nodes {
		line.X = append(line.X, float64(s.Cores[i]))
		line.Y = append(line.Y, s.Durations[i].Seconds())
	}
	RenderChart(w, fmt.Sprintf("%s: node scalability", s.Dataset),
		"cores", "seconds", []Series{line}, 60, 12)
}
