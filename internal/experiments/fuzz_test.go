package experiments

import (
	"context"
	"math"
	"testing"
	"time"

	"yafim/internal/chaos"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
	"yafim/internal/rdd"
	"yafim/internal/yafim"
)

// fuzzProb folds an arbitrary float into a valid probability in [0, 1).
func fuzzProb(p float64) float64 {
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return 0
	}
	return math.Abs(math.Mod(p, 1))
}

// FuzzChaosMiningInvariant is the end-to-end exactness guarantee: for random
// seeds, datasets and chaos plans, the frequent itemsets mined under chaos
// are identical to the fault-free run for both YAFIM and MRApriori. Only the
// virtual timelines may change.
func FuzzChaosMiningInvariant(f *testing.F) {
	f.Add(int64(7), int64(2014), 0.05, 0.02, 0.01, uint8(4), uint8(0), true)
	f.Add(int64(-9), int64(1), 0.6, 0.8, 0.5, uint8(1), uint8(0), false)
	f.Add(int64(123), int64(99), 1.0, 0.0, 1.0, uint8(9), uint8(3), true)
	names := []string{"MushRoom", "T10I4D100K", "Chess", "Pumsb_star"}
	f.Fuzz(func(t *testing.T, chaosSeed, dbSeed int64, taskP, fetchP, readP float64,
		factor, dsIdx uint8, crash bool) {
		b, err := FindBenchmark(names[int(dsIdx)%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		env := testEnv()
		env.Scale = 0.02
		env.Seed = dbSeed
		db, err := b.Gen(env.Scale, env.Seed)
		if err != nil {
			t.Fatal(err)
		}

		yBase, _, err := RunYAFIM(context.Background(), db, b.Support, env.Spark, env.tasks(env.Spark), yafim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		mBase, _, err := RunMRApriori(context.Background(), db, b.Support, env.Hadoop, env.tasks(env.Hadoop),
			mrapriori.Config{}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !yBase.Result.Equal(mBase.Result) {
			t.Fatal("fault-free engines disagree")
		}

		makePlan := func(nodes int, faultFree time.Duration) *chaos.Plan {
			plan := &chaos.Plan{
				Seed:              chaosSeed,
				TaskFailProb:      fuzzProb(taskP),
				FetchFailProb:     fuzzProb(fetchP),
				BlockReadFailProb: fuzzProb(readP),
				Stragglers:        []chaos.Straggler{{Node: 0, Factor: 1 + float64(factor%8)}},
			}
			if crash {
				plan.Crash = &chaos.NodeCrash{Node: nodes - 1, At: faultFree / 3}
			}
			if err := plan.Validate(); err != nil {
				t.Fatalf("fuzz built an invalid plan: %v", err)
			}
			return plan
		}

		yPlan := makePlan(env.Spark.Nodes, yBase.TotalDuration())
		yChaos, _, err := RunYAFIM(context.Background(), db, b.Support, env.Spark, env.tasks(env.Spark),
			yafim.Config{}, rdd.WithChaos(yPlan))
		if err != nil {
			t.Fatal(err)
		}
		if !yChaos.Result.Equal(yBase.Result) {
			t.Fatal("chaos changed YAFIM's frequent itemsets")
		}

		mPlan := makePlan(env.Hadoop.Nodes, mBase.TotalDuration())
		mChaos, _, err := RunMRApriori(context.Background(), db, b.Support, env.Hadoop, env.tasks(env.Hadoop),
			mrapriori.Config{}, obs.New(), mPlan)
		if err != nil {
			t.Fatal(err)
		}
		if !mChaos.Result.Equal(mBase.Result) {
			t.Fatal("chaos changed MRApriori's frequent itemsets")
		}
	})
}
