package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The CSV exporters emit the exact series behind each figure so external
// plotting tools can redraw the paper's panels from reproduction data.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func secs(d interface{ Seconds() float64 }) string {
	return strconv.FormatFloat(d.Seconds(), 'f', 6, 64)
}

// ComparisonCSV emits one row per pass of a Fig. 3 / Fig. 6 comparison.
func ComparisonCSV(w io.Writer, c *Comparison) error {
	header := []string{"dataset", "support", "pass", "candidates", "frequent",
		"yafim_seconds", "mrapriori_seconds"}
	var rows [][]string
	n := max(len(c.YAFIM.Passes), len(c.MRApriori.Passes))
	for i := 0; i < n; i++ {
		row := []string{c.Dataset, fmt.Sprintf("%g", c.Support), strconv.Itoa(i + 1), "", "", "", ""}
		if i < len(c.YAFIM.Passes) {
			p := c.YAFIM.Passes[i]
			row[3] = strconv.Itoa(p.Candidates)
			row[4] = strconv.Itoa(p.Frequent)
			row[5] = secs(p.Duration)
		}
		if i < len(c.MRApriori.Passes) {
			row[6] = secs(c.MRApriori.Passes[i].Duration)
		}
		rows = append(rows, row)
	}
	return writeCSV(w, header, rows)
}

// SizeupCSV emits one row per replication factor of a Fig. 4 panel.
func SizeupCSV(w io.Writer, s *Sizeup) error {
	header := []string{"dataset", "replication", "yafim_seconds", "mrapriori_seconds"}
	var rows [][]string
	for i, rep := range s.Replications {
		rows = append(rows, []string{
			s.Dataset, strconv.Itoa(rep), secs(s.YAFIM[i]), secs(s.MRApriori[i]),
		})
	}
	return writeCSV(w, header, rows)
}

// SpeedupCSV emits one row per node count of a Fig. 5 panel.
func SpeedupCSV(w io.Writer, s *Speedup) error {
	header := []string{"dataset", "nodes", "cores", "yafim_seconds", "speedup"}
	rel := s.Relative()
	var rows [][]string
	for i := range s.Nodes {
		rows = append(rows, []string{
			s.Dataset, strconv.Itoa(s.Nodes[i]), strconv.Itoa(s.Cores[i]),
			secs(s.Durations[i]), strconv.FormatFloat(rel[i], 'f', 4, 64),
		})
	}
	return writeCSV(w, header, rows)
}

// SummaryCSV emits one row per benchmark of the headline summary.
func SummaryCSV(w io.Writer, s *Summary) error {
	header := []string{"dataset", "support", "yafim_seconds", "mrapriori_seconds", "speedup"}
	var rows [][]string
	for _, c := range s.Comparisons {
		rows = append(rows, []string{
			c.Dataset, fmt.Sprintf("%g", c.Support),
			secs(c.YAFIM.TotalDuration()), secs(c.MRApriori.TotalDuration()),
			strconv.FormatFloat(c.Speedup(), 'f', 4, 64),
		})
	}
	return writeCSV(w, header, rows)
}
