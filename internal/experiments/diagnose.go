package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/chaos"
	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
	"yafim/internal/rdd"
	"yafim/internal/yafim"
)

// DiagnosedRun is one engine's mining run with its full diagnosis: the span
// recorder, the analyzed critical path and skew report, and the engine's
// total virtual duration for cross-checking.
type DiagnosedRun struct {
	Dataset   string
	Engine    string
	Trace     *apriori.Trace
	Recorder  *obs.Recorder
	Diagnosis *obs.Diagnosis
	Total     time.Duration
}

// RunDiagnosed mines the benchmark with both engines, analyzes each run,
// and verifies the analyses are internally consistent: results agree across
// engines, each critical path sums to its makespan, and the analyzed
// makespan matches the engine's own virtual clock. plan optionally injects
// chaos into both engines (nil = clean run). onRecorder, when non-nil, is
// called with each engine's live recorder just before its run starts, so a
// serving surface can expose the in-flight run.
func RunDiagnosed(ctx context.Context, b Benchmark, env Env, plan *chaos.Plan,
	onRecorder func(engine string, rec *obs.Recorder)) ([]DiagnosedRun, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}

	yRec := obs.New()
	if onRecorder != nil {
		onRecorder("yafim", yRec)
	}
	yOpts := []rdd.Option{rdd.WithRecorder(yRec)}
	if plan != nil {
		// A diagnosis run wants the injected faults visible in the schedule,
		// not speculated away: disable mitigation so straggler tasks keep
		// their stretched durations and the analyzer has something to
		// attribute.
		yOpts = append(yOpts, rdd.WithChaos(plan), rdd.WithResilience(chaos.Resilience{}))
	}
	yTrace, yCtx, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark),
		yafim.Config{}, yOpts...)
	if err != nil {
		return nil, fmt.Errorf("experiments: diagnose %s: yafim: %w", b.Name, err)
	}

	mRec := obs.New()
	if onRecorder != nil {
		onRecorder("mapreduce", mRec)
	}
	mTrace, mRunner, err := runMRDiagnosed(ctx, db, b.Support, env.Hadoop, env.tasks(env.Hadoop),
		mRec, plan)
	if err != nil {
		return nil, fmt.Errorf("experiments: diagnose %s: mapreduce: %w", b.Name, err)
	}
	if !yTrace.Result.Equal(mTrace.Result) {
		return nil, fmt.Errorf("experiments: diagnose %s: engines disagree", b.Name)
	}

	runs := []DiagnosedRun{
		{Dataset: b.Name, Engine: "yafim", Trace: yTrace, Recorder: yRec,
			Diagnosis: obs.Analyze(yRec, obs.AnalyzeOptions{Cluster: &env.Spark}),
			Total:     yCtx.TotalDuration()},
		{Dataset: b.Name, Engine: "mapreduce", Trace: mTrace, Recorder: mRec,
			Diagnosis: obs.Analyze(mRec, obs.AnalyzeOptions{Cluster: &env.Hadoop}),
			Total:     mRunner.TotalDuration()},
	}
	for _, r := range runs {
		if err := r.Diagnosis.Validate(); err != nil {
			return nil, fmt.Errorf("experiments: diagnose %s: %s: %w", b.Name, r.Engine, err)
		}
		// The analyzed makespan must equal the engine's own virtual clock:
		// the diagnosis layer reconstructs time from spans and may not
		// disagree with the ledger-driven schedule by a nanosecond.
		if r.Diagnosis.Makespan != r.Total {
			return nil, fmt.Errorf("experiments: diagnose %s: %s: analyzed makespan %v != engine total %v",
				b.Name, r.Engine, r.Diagnosis.Makespan, r.Total)
		}
	}
	return runs, nil
}

// runMRDiagnosed is RunMRApriori with mitigation disabled on chaotic runs:
// same staging and recorder wiring, but speculation, blacklisting and
// re-replication are off so injected stragglers keep their stretched task
// durations instead of being rescued.
func runMRDiagnosed(ctx context.Context, db *itemset.DB, support float64, cfg cluster.Config,
	tasks int, rec *obs.Recorder, plan *chaos.Plan) (*apriori.Trace, *mapreduce.Runner, error) {
	fs := dfs.New(cfg.Nodes)
	path := stagePath(db.Name)
	if _, err := dataset.Stage(fs, path, db); err != nil {
		return nil, nil, err
	}
	runner, err := mapreduce.NewRunner(fs, cfg)
	if err != nil {
		return nil, nil, err
	}
	runner.SetRecorder(rec)
	fs.SetRecorder(rec)
	if plan != nil {
		runner.SetResilience(chaos.Resilience{})
		if err := runner.SetChaos(plan); err != nil {
			return nil, nil, err
		}
	}
	trace, err := mrapriori.MineContext(ctx, runner, fs, path, "/work",
		mrapriori.Config{MinSupport: support, NumMapTasks: tasks})
	if err != nil {
		return nil, nil, err
	}
	return trace, runner, nil
}

// WriteDiagTable renders the per-engine critical-path and skew comparison:
// for each engine, the makespan, the dominant critical-path step, the worst
// stage Gini, and straggler counts by attributed cause.
func WriteDiagTable(w io.Writer, runs []DiagnosedRun) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tmakespan\tcritical steps\ttop step\ttop share\tworst gini\tstragglers\tenv\tretries\tdata-skew")
	for _, r := range runs {
		d := r.Diagnosis
		var top obs.CriticalStep
		for _, s := range d.CriticalPath {
			if s.Duration > top.Duration {
				top = s
			}
		}
		topName := top.Stage
		if top.Kind == "job-overhead" {
			topName = top.Job + " overhead"
		}
		share := 0.0
		if d.Makespan > 0 {
			share = 100 * float64(top.Duration) / float64(d.Makespan)
		}
		worstGini := 0.0
		var env, retries, skew int
		for _, st := range d.Stages {
			if st.Gini > worstGini {
				worstGini = st.Gini
			}
			for _, s := range st.Stragglers {
				switch s.Cause {
				case obs.CauseEnvironment:
					env++
				case obs.CauseRetries:
					retries++
				case obs.CauseDataSkew:
					skew++
				}
			}
		}
		fmt.Fprintf(tw, "%s\t%v\t%d\t%s\t%.1f%%\t%.2f\t%d\t%d\t%d\t%d\n",
			r.Engine, d.Makespan.Round(time.Millisecond), len(d.CriticalPath),
			topName, share, worstGini, env+retries+skew, env, retries, skew)
	}
	return tw.Flush()
}
