package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// fmtDur renders a duration with sensible precision for report tables.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%.0fms", float64(d)/float64(time.Millisecond))
	}
}

// WriteTable1 renders the dataset-properties table (Table I).
func WriteTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tItems\tTransactions\tAvgLen")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\n", r.Dataset, r.NumItems, r.NumTransactions, r.AvgLength)
	}
	tw.Flush()
}

// WriteComparison renders a Fig. 3 / Fig. 6 panel: per-pass execution time
// of both engines plus candidate and frequent counts.
func WriteComparison(w io.Writer, c *Comparison) {
	fmt.Fprintf(w, "%s (Sup = %g%%): %d transactions, %d items\n",
		c.Dataset, c.Support*100, c.DB.NumTransactions, c.DB.NumItems)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pass\tcandidates\tfrequent\tYAFIM\tMRApriori\tratio")
	n := len(c.YAFIM.Passes)
	if len(c.MRApriori.Passes) > n {
		n = len(c.MRApriori.Passes)
	}
	for i := 0; i < n; i++ {
		var cands, freq int
		var y, m time.Duration
		if i < len(c.YAFIM.Passes) {
			cands, freq, y = c.YAFIM.Passes[i].Candidates, c.YAFIM.Passes[i].Frequent, c.YAFIM.Passes[i].Duration
		}
		if i < len(c.MRApriori.Passes) {
			m = c.MRApriori.Passes[i].Duration
		}
		ratio := "-"
		if y > 0 && m > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(m)/float64(y))
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%s\t%s\n", i+1, cands, freq, fmtDur(y), fmtDur(m), ratio)
	}
	fmt.Fprintf(tw, "total\t\t%d\t%s\t%s\t%.1fx\n",
		c.YAFIM.Result.NumFrequent(), fmtDur(c.YAFIM.TotalDuration()),
		fmtDur(c.MRApriori.TotalDuration()), c.Speedup())
	tw.Flush()
}

// WriteSummary renders the headline average-speedup table.
func WriteSummary(w io.Writer, s *Summary) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\tSup\tYAFIM total\tMRApriori total\tspeedup")
	for _, c := range s.Comparisons {
		fmt.Fprintf(tw, "%s\t%g%%\t%s\t%s\t%.1fx\n",
			c.Dataset, c.Support*100, fmtDur(c.YAFIM.TotalDuration()),
			fmtDur(c.MRApriori.TotalDuration()), c.Speedup())
	}
	fmt.Fprintf(tw, "average\t\t\t\t%.1fx\n", s.AverageSpeedup())
	tw.Flush()
}

// WriteSizeup renders one Fig. 4 panel.
func WriteSizeup(w io.Writer, s *Sizeup) {
	fmt.Fprintf(w, "%s sizeup (48 cores)\n", s.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "replication\tYAFIM\tMRApriori")
	for i, times := range s.Replications {
		fmt.Fprintf(tw, "%dx\t%s\t%s\n", times, fmtDur(s.YAFIM[i]), fmtDur(s.MRApriori[i]))
	}
	tw.Flush()
}

// WriteSpeedup renders one Fig. 5 panel.
func WriteSpeedup(w io.Writer, s *Speedup) {
	fmt.Fprintf(w, "%s node speedup (YAFIM)\n", s.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "nodes\tcores\ttime\tspeedup")
	rel := s.Relative()
	for i := range s.Nodes {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%.2fx\n", s.Nodes[i], s.Cores[i], fmtDur(s.Durations[i]), rel[i])
	}
	tw.Flush()
}

// WriteAblation renders one design-choice comparison.
func WriteAblation(w io.Writer, a *Ablation) {
	fmt.Fprintf(w, "%s on %s: with %s, without %s (%.1fx benefit)\n",
		a.Name, a.Dataset, fmtDur(a.With), fmtDur(a.Without), a.Benefit())
}
