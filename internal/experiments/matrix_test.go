package experiments

import (
	"context"
	"strings"
	"testing"
)

// TestMatrix runs the engine matrix on the candidate-heavy benchmark at two
// support levels: every engine must agree at every level, the RDD engines
// must report a shuffle-residency peak, and MRApriori (which spills map
// output to the DFS) must report none.
func TestMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	b, err := FindBenchmark("T10I4D100K")
	if err != nil {
		t.Fatal(err)
	}
	supports := MatrixSupports(b)
	if len(supports) != 2 {
		t.Fatalf("supports = %v, want two levels", supports)
	}
	m, err := RunMatrix(context.Background(), b, env, supports)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 6 {
		t.Fatalf("cells = %d, want 3 engines x 2 supports", len(m.Cells))
	}
	for _, c := range m.Cells {
		if c.Duration <= 0 || c.Jobs == 0 {
			t.Errorf("%s@%v: empty cost profile %+v", c.Engine, c.Support, c)
		}
		switch c.Engine {
		case "MRApriori":
			if c.PeakShuffle != -1 {
				t.Errorf("MRApriori reported shuffle residency %d", c.PeakShuffle)
			}
		default:
			if c.PeakShuffle <= 0 {
				t.Errorf("%s@%v: no shuffle residency peak", c.Engine, c.Support)
			}
		}
	}
	// The doubled support level mines a sparser lattice.
	if m.Cells[0].Frequent <= m.Cells[3].Frequent {
		t.Errorf("paper support found %d itemsets, doubled support %d — want strictly more",
			m.Cells[0].Frequent, m.Cells[3].Frequent)
	}
	var sb strings.Builder
	WriteMatrix(&sb, m)
	out := sb.String()
	for _, want := range []string{"YAFIM", "RDD-Eclat", "MRApriori", "peak shuffle"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix output missing %q", want)
		}
	}
}
