package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/cluster"
	"yafim/internal/dataset"
	"yafim/internal/dfs"
	"yafim/internal/itemset"
	"yafim/internal/mapreduce"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
	"yafim/internal/rddeclat"
	"yafim/internal/son"
	"yafim/internal/yafim"
)

// VariantResult is one strategy's outcome in the one-phase vs k-phase
// comparison the paper's related-work section (§III) discusses: SPC (one
// job per pass), FPC/DPC (combined passes), SON (one-phase: two jobs
// total), and YAFIM.
type VariantResult struct {
	Name     string
	Jobs     int
	Duration time.Duration
	// Skipped notes why a strategy was not run (e.g. SON's local-support
	// blow-up on low-support workloads).
	Skipped string
}

// Variants is the full comparison for one benchmark.
type Variants struct {
	Dataset string
	Results []VariantResult
}

// RunVariants mines the benchmark with every strategy and verifies all of
// them produce identical frequent itemsets.
func RunVariants(ctx context.Context, b Benchmark, env Env) (*Variants, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}
	out := &Variants{Dataset: b.Name}
	var reference *apriori.Result

	check := func(name string, res *apriori.Result, jobs int, d time.Duration) error {
		if reference == nil {
			reference = res
		} else if !res.Equal(reference) {
			return fmt.Errorf("experiments: variant %s disagrees on %s", name, b.Name)
		}
		out.Results = append(out.Results, VariantResult{Name: name, Jobs: jobs, Duration: d})
		return nil
	}

	// YAFIM on the Spark profile.
	yTrace, yCtx, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark), yafim.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: variants %s: yafim: %w", b.Name, err)
	}
	if err := check("YAFIM", yTrace.Result, len(yCtx.Reports()), yTrace.TotalDuration()); err != nil {
		return nil, err
	}

	// Dist-Eclat on the Spark profile: vertical mining in a fixed number of
	// jobs.
	dTrace, dCtx, err := RunDistEclat(ctx, db, b.Support, env.Spark, env.tasks(env.Spark))
	if err != nil {
		return nil, fmt.Errorf("experiments: variants %s: disteclat: %w", b.Name, err)
	}
	if err := check("Dist-Eclat", dTrace.Result, len(dCtx.Reports()), dTrace.TotalDuration()); err != nil {
		return nil, err
	}

	// RDD-Eclat on the Spark profile: equivalence-class-partitioned bitset
	// intersection.
	rTrace, rCtx, err := RunRDDEclat(ctx, db, b.Support, env.Spark, env.tasks(env.Spark), rddeclat.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: variants %s: rddeclat: %w", b.Name, err)
	}
	if err := check("RDD-Eclat", rTrace.Result, len(rCtx.Reports()), rTrace.TotalDuration()); err != nil {
		return nil, err
	}

	// The MapReduce family on the Hadoop profile.
	for _, v := range []mrapriori.Variant{mrapriori.SPC, mrapriori.FPC, mrapriori.DPC} {
		trace, runner, err := RunMRApriori(ctx, db, b.Support, env.Hadoop, env.tasks(env.Hadoop),
			mrapriori.Config{Variant: v}, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: variants %s: %v: %w", b.Name, v, err)
		}
		if err := check(v.String(), trace.Result, len(runner.Reports()), trace.TotalDuration()); err != nil {
			return nil, err
		}
	}

	// SON, the one-phase algorithm (two jobs total). Its local mining runs
	// at the global relative support on each chunk; when that translates to
	// an absolute local threshold of only a few transactions, the local
	// candidate sets explode combinatorially — the exact §III criticism of
	// one-phase algorithms — so the experiment reports it as impractical
	// rather than running for hours.
	chunk := db.Len() / env.tasks(env.Hadoop)
	if float64(chunk)*b.Support < 8 {
		out.Results = append(out.Results, VariantResult{
			Name:    "SON",
			Skipped: fmt.Sprintf("local threshold %.1f tx/chunk too low: one-phase candidate blow-up", float64(chunk)*b.Support),
		})
		return out, nil
	}
	sonTrace, sonRunner, err := RunSON(ctx, db, b.Support, env.Hadoop, env.tasks(env.Hadoop), nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: variants %s: son: %w", b.Name, err)
	}
	if err := check("SON", sonTrace.Result, len(sonRunner.Reports()), sonTrace.TotalDuration()); err != nil {
		return nil, err
	}
	return out, nil
}

// RunSON stages db into a fresh DFS and mines it with the one-phase SON
// algorithm on the given cluster. rec (may be nil) captures telemetry.
func RunSON(ctx context.Context, db *itemset.DB, support float64, cfg cluster.Config, tasks int,
	rec *obs.Recorder) (*apriori.Trace, *mapreduce.Runner, error) {
	fs := dfs.New(cfg.Nodes)
	path := stagePath(db.Name)
	if _, err := dataset.Stage(fs, path, db); err != nil {
		return nil, nil, err
	}
	runner, err := mapreduce.NewRunner(fs, cfg)
	if err != nil {
		return nil, nil, err
	}
	runner.SetRecorder(rec)
	fs.SetRecorder(rec)
	trace, err := son.MineContext(ctx, runner, fs, path, "/work", son.Config{
		MinSupport:  support,
		NumMapTasks: tasks,
	})
	if err != nil {
		return nil, nil, err
	}
	return trace, runner, nil
}

// WriteVariants renders the strategy comparison.
func WriteVariants(w io.Writer, v *Variants) {
	fmt.Fprintf(w, "%s: one-phase vs k-phase strategies\n", v.Dataset)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tjobs\ttotal")
	for _, r := range v.Results {
		if r.Skipped != "" {
			fmt.Fprintf(tw, "%s\t-\tskipped: %s\n", r.Name, r.Skipped)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\n", r.Name, r.Jobs, fmtDur(r.Duration))
	}
	tw.Flush()
}
