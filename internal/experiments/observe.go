package experiments

import (
	"context"
	"fmt"

	"yafim/internal/apriori"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
	"yafim/internal/rdd"
	"yafim/internal/yafim"
)

// ObservedRun is one engine's instrumented mining run over a benchmark: the
// mining trace plus the telemetry recorder that captured its spans and
// counters.
type ObservedRun struct {
	Dataset  string
	Engine   string
	Trace    *apriori.Trace
	Recorder *obs.Recorder
}

// RunObserved mines the benchmark once with YAFIM and once with the
// MapReduce comparator, each with a fresh telemetry recorder attached, and
// verifies the two engines agree before returning both runs.
func RunObserved(ctx context.Context, b Benchmark, env Env) ([]ObservedRun, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}

	yRec := obs.New()
	yTrace, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark),
		yafim.Config{}, rdd.WithRecorder(yRec))
	if err != nil {
		return nil, fmt.Errorf("experiments: observed %s: yafim: %w", b.Name, err)
	}

	mRec := obs.New()
	mTrace, _, err := RunMRApriori(ctx, db, b.Support, env.Hadoop, env.tasks(env.Hadoop),
		mrapriori.Config{}, mRec, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: observed %s: mapreduce: %w", b.Name, err)
	}
	if !yTrace.Result.Equal(mTrace.Result) {
		return nil, fmt.Errorf("experiments: observed %s: engines disagree", b.Name)
	}

	return []ObservedRun{
		{Dataset: b.Name, Engine: "yafim", Trace: yTrace, Recorder: yRec},
		{Dataset: b.Name, Engine: "mapreduce", Trace: mTrace, Recorder: mRec},
	}, nil
}
