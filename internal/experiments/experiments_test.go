package experiments

import (
	"context"
	"strings"
	"testing"
	"time"
)

// testEnv shrinks datasets so the suite stays fast while preserving every
// shape property the paper reports.
func testEnv() Env {
	env := DefaultEnv()
	env.Scale = 0.05
	return env
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(testEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Dataset] = true
		if r.NumItems <= 0 || r.NumTransactions <= 0 || r.AvgLength <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	for _, want := range []string{"MushRoom", "T10I4D100K", "Chess", "Pumsb_star"} {
		if !names[want] {
			t.Errorf("missing dataset %s", want)
		}
	}
	var sb strings.Builder
	WriteTable1(&sb, rows)
	if !strings.Contains(sb.String(), "MushRoom") {
		t.Error("table output missing rows")
	}
}

func TestFindBenchmark(t *testing.T) {
	if _, err := FindBenchmark("Chess"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindBenchmark("MedicalCases"); err != nil {
		t.Fatal(err)
	}
	if _, err := FindBenchmark("nope"); err == nil {
		t.Fatal("unknown benchmark resolved")
	}
}

// TestFig3Shape verifies the core claim on every benchmark: YAFIM total
// time beats MRApriori by a wide margin, and YAFIM's late passes drop far
// below MRApriori's per-job floor.
func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	for _, b := range PaperBenchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			c, err := RunComparison(context.Background(), b, env)
			if err != nil {
				t.Fatal(err)
			}
			if sp := c.Speedup(); sp < 3 {
				t.Errorf("speedup = %.1fx; paper reports order-of-magnitude wins", sp)
			}
			// Every pass must be faster under YAFIM.
			n := min(len(c.YAFIM.Passes), len(c.MRApriori.Passes))
			for i := 0; i < n; i++ {
				if c.MRApriori.Passes[i].Duration == 0 {
					continue // later level of a combined job
				}
				if c.YAFIM.Passes[i].Duration >= c.MRApriori.Passes[i].Duration {
					t.Errorf("pass %d: YAFIM %v >= MRApriori %v", i+1,
						c.YAFIM.Passes[i].Duration, c.MRApriori.Passes[i].Duration)
				}
			}
			// Last YAFIM pass must undercut the MapReduce job-startup floor.
			last := c.YAFIM.Passes[len(c.YAFIM.Passes)-1].Duration
			if last >= env.Hadoop.JobStartup {
				t.Errorf("late YAFIM pass %v not below the %v job floor", last, env.Hadoop.JobStartup)
			}
			var sb strings.Builder
			WriteComparison(&sb, c)
			if !strings.Contains(sb.String(), "total") {
				t.Error("comparison output truncated")
			}
		})
	}
}

// TestFig4Shape verifies the sizeup property on one benchmark: MRApriori
// grows roughly linearly with replication while YAFIM grows much more
// slowly.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	// Pumsb_star is the data-heaviest planted benchmark, where the growth
	// contrast is most visible.
	env.Scale = 0.2
	s, err := RunSizeup(context.Background(), PaperBenchmarks()[3], env, []int{1, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 4 contrast is about absolute slope: MRApriori's curve
	// climbs steeply with data volume while YAFIM's stays visually flat on
	// the same axes.
	yIncr := s.YAFIM[2] - s.YAFIM[0]
	mIncr := s.MRApriori[2] - s.MRApriori[0]
	if mIncr < 3*yIncr {
		t.Errorf("MRApriori slope %v not much steeper than YAFIM's %v", mIncr, yIncr)
	}
	for i := 1; i < len(s.YAFIM); i++ {
		if s.YAFIM[i] < s.YAFIM[i-1] {
			t.Errorf("YAFIM time decreased with more data: %v", s.YAFIM)
		}
		if s.MRApriori[i] < s.MRApriori[i-1] {
			t.Errorf("MRApriori time decreased with more data: %v", s.MRApriori)
		}
	}
	var sb strings.Builder
	WriteSizeup(&sb, s)
	if !strings.Contains(sb.String(), "replication") {
		t.Error("sizeup output truncated")
	}
}

// TestFig5Shape verifies near-linear node scalability of YAFIM: more nodes
// never slow it down, and 3x the nodes buys a clearly superlinear-in-one
// improvement factor.
func TestFig5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	env.Scale = 0.2 // enough work for scaling to show
	s, err := RunSpeedup(context.Background(), PaperBenchmarks()[3], env, []int{4, 8, 12}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Durations); i++ {
		if s.Durations[i] > s.Durations[i-1] {
			t.Errorf("more nodes slowed YAFIM: %v", s.Durations)
		}
	}
	rel := s.Relative()
	if rel[len(rel)-1] < 1.5 {
		t.Errorf("12 nodes only %.2fx faster than 4", rel[len(rel)-1])
	}
	var sb strings.Builder
	WriteSpeedup(&sb, s)
	if !strings.Contains(sb.String(), "cores") {
		t.Error("speedup output truncated")
	}
}

// TestFig6Shape runs the medical application comparison (Sup = 3%).
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	c, err := RunComparison(context.Background(), MedicalBenchmark(), env)
	if err != nil {
		t.Fatal(err)
	}
	if sp := c.Speedup(); sp < 3 {
		t.Errorf("medical speedup = %.1fx", sp)
	}
	// The paper notes YAFIM pass times shrink as iterations proceed (fewer
	// candidates); the last pass must be cheaper than the second.
	p := c.YAFIM.Passes
	if len(p) >= 3 && p[len(p)-1].Duration >= p[1].Duration {
		t.Errorf("late pass %v not cheaper than pass 2 %v", p[len(p)-1].Duration, p[1].Duration)
	}
}

func TestSummaryAverage(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	s, err := RunSummary(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Comparisons) != 4 {
		t.Fatalf("comparisons = %d", len(s.Comparisons))
	}
	if avg := s.AverageSpeedup(); avg < 3 {
		t.Errorf("average speedup = %.1fx", avg)
	}
	var sb strings.Builder
	WriteSummary(&sb, s)
	if !strings.Contains(sb.String(), "average") {
		t.Error("summary output truncated")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	cases := []struct {
		name string
		b    Benchmark
		run  func(context.Context, Benchmark, Env) (*Ablation, error)
	}{
		{"broadcast", PaperBenchmarks()[0], RunBroadcastAblation},
		{"rdd-cache", PaperBenchmarks()[0], RunCacheAblation},
		// The hash tree only pays off once the candidate set is large, so its
		// ablation runs on the synthetic market-basket data whose second pass
		// carries a huge C2.
		{"hash-tree", PaperBenchmarks()[1], RunHashTreeAblation},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := c.b
			a, err := c.run(context.Background(), b, env)
			if err != nil {
				t.Fatal(err)
			}
			if a.Name != c.name || a.Dataset != b.Name {
				t.Errorf("ablation labels: %+v", a)
			}
			if a.Without <= a.With {
				t.Errorf("%s: feature off (%v) not slower than on (%v)", c.name, a.Without, a.With)
			}
			var sb strings.Builder
			WriteAblation(&sb, a)
			if !strings.Contains(sb.String(), c.name) {
				t.Error("ablation output truncated")
			}
		})
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Second, "1.5m"},
		{1500 * time.Millisecond, "1.5s"},
		{250 * time.Millisecond, "250ms"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestVariants runs the one-phase vs k-phase strategy comparison: all seven
// strategies must agree exactly, SON must use exactly two jobs, and FPC
// must use fewer jobs than SPC.
func TestVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	// Few, large chunks keep SON's local mining thresholds meaningful.
	env.Tasks = 8
	v, err := RunVariants(context.Background(), PaperBenchmarks()[0], env)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Results) != 7 {
		t.Fatalf("results = %d", len(v.Results))
	}
	byName := map[string]VariantResult{}
	for _, r := range v.Results {
		byName[r.Name] = r
	}
	if byName["SON"].Jobs != 2 {
		t.Errorf("SON used %d jobs, want 2", byName["SON"].Jobs)
	}
	if byName["FPC"].Jobs >= byName["SPC"].Jobs {
		t.Errorf("FPC jobs (%d) not below SPC's (%d)", byName["FPC"].Jobs, byName["SPC"].Jobs)
	}
	if byName["YAFIM"].Duration >= byName["SPC"].Duration {
		t.Errorf("YAFIM (%v) not faster than SPC (%v)", byName["YAFIM"].Duration, byName["SPC"].Duration)
	}
	var sb strings.Builder
	WriteVariants(&sb, v)
	if !strings.Contains(sb.String(), "SON") {
		t.Error("variants output truncated")
	}
}

// TestVariantsSkipsExplosiveSON verifies the one-phase guard: with tiny
// chunks and a low support, SON's local mining would blow up, so the
// comparison must report it as skipped rather than attempt it.
func TestVariantsSkipsExplosiveSON(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	env.Tasks = 0 // default 192 tasks -> ~2-transaction chunks at this scale
	v, err := RunVariants(context.Background(), PaperBenchmarks()[0], env)
	if err != nil {
		t.Fatal(err)
	}
	last := v.Results[len(v.Results)-1]
	if last.Name != "SON" || last.Skipped == "" {
		t.Fatalf("expected SON skipped, got %+v", last)
	}
	var sb strings.Builder
	WriteVariants(&sb, v)
	if !strings.Contains(sb.String(), "skipped") {
		t.Error("skip reason not rendered")
	}
}

// TestShapeChecksAllPass runs the user-facing claim checker at test scale;
// every claim must reproduce.
func TestShapeChecksAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv() // scale 0.05 keeps the full sweep in the tens of seconds
	checks, err := RunShapeChecks(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 15 {
		t.Fatalf("only %d checks ran", len(checks))
	}
	var sb strings.Builder
	if failed := WriteChecks(&sb, checks); failed > 0 {
		t.Fatalf("%d claims failed:\n%s", failed, sb.String())
	}
	if !strings.Contains(sb.String(), "claims reproduced") {
		t.Error("report truncated")
	}
}
