package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yafim/internal/chaos"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
	"yafim/internal/rdd"
	"yafim/internal/yafim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRunDiagnosedClean diagnoses a healthy run of both engines. RunDiagnosed
// itself enforces the structural invariants (critical path sums to the
// makespan, analyzed makespan equals the engine clock); here we check the
// diagnosis content a clean run must have — and must not have.
func TestRunDiagnosedClean(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	runs, err := RunDiagnosed(context.Background(), PaperBenchmarks()[1], env, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Engine != "yafim" || runs[1].Engine != "mapreduce" {
		t.Fatalf("runs = %+v", runs)
	}
	for _, r := range runs {
		if len(r.Diagnosis.Stages) == 0 || len(r.Diagnosis.CriticalPath) == 0 {
			t.Fatalf("%s: empty diagnosis", r.Engine)
		}
		// In a clean deterministic run every task's duration is exactly what
		// its metered cost predicts, so no straggler may be attributed to the
		// environment; stragglers, if any, must be genuine data skew.
		for _, st := range r.Diagnosis.Stages {
			for _, s := range st.Stragglers {
				if s.Cause == obs.CauseEnvironment {
					t.Errorf("%s: clean run attributed task %d in stage %s to the environment",
						r.Engine, s.Task, st.Stage)
				}
			}
		}
	}

	var buf bytes.Buffer
	if err := WriteDiagTable(&buf, runs); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"engine", "yafim", "mapreduce", "makespan", "gini"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("diag table missing %q:\n%s", want, buf.String())
		}
	}
}

// TestRunDiagnosedChaosAttribution is the end-to-end attribution check: a
// chaos plan slows node 1 by 4x, and the diagnosis of both engines must
// point at the environment on exactly that node — not at the data.
func TestRunDiagnosedChaosAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	plan := &chaos.Plan{
		Seed:       1,
		Stragglers: []chaos.Straggler{{Node: 1, Factor: 4}},
	}
	runs, err := RunDiagnosed(context.Background(), PaperBenchmarks()[1], env, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		envCount := 0
		for _, st := range r.Diagnosis.Stages {
			for _, s := range st.Stragglers {
				if s.Cause != obs.CauseEnvironment {
					continue
				}
				envCount++
				if s.Node != 1 {
					t.Errorf("%s: environment straggler on node %d, injected node was 1",
						r.Engine, s.Node)
				}
				if s.Slowdown <= 1.5 {
					t.Errorf("%s: environment straggler with slowdown %.2f", r.Engine, s.Slowdown)
				}
			}
		}
		if envCount == 0 {
			t.Errorf("%s: injected 4x straggler node produced no environment attribution", r.Engine)
		}
	}
}

// TestDiagnosisGolden pins the full human-readable diagnosis of a fixed-seed
// T10I4D100K YAFIM run. The virtual schedule is deterministic, so this output
// is stable down to the byte; regenerate with -update after intentional
// changes.
func TestDiagnosisGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	env := testEnv()
	runs, err := RunDiagnosed(context.Background(), PaperBenchmarks()[1], env, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	for _, r := range runs {
		buf.WriteString("== " + r.Engine + " ==\n")
		if err := obs.WriteDiagnosis(&buf, r.Diagnosis); err != nil {
			t.Fatal(err)
		}
	}

	golden := filepath.Join("testdata", "diagnosis_T10I4D100K.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("diagnosis drifted from golden (regenerate with -update if intended):\n got:\n%s\nwant:\n%s",
			buf.String(), want)
	}
}

// TestDiagnosisMeteringNeutral is the acceptance gate for the whole layer:
// attaching a recorder and exercising every diagnosis surface must not move
// the engines' virtual clocks or results by a nanosecond, across seeds and
// engines.
func TestDiagnosisMeteringNeutral(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment test")
	}
	b := PaperBenchmarks()[1]
	for _, seed := range []int64{7, 1234, 2014} {
		env := testEnv()
		env.Scale = 0.02 // three seeds x two engines x three runs each: stay small
		env.Seed = seed
		db, err := b.Gen(env.Scale, env.Seed)
		if err != nil {
			t.Fatal(err)
		}

		// YAFIM, bare: no recorder anywhere.
		bareTrace, bareCtx, err := RunYAFIM(context.Background(), db, b.Support,
			env.Spark, env.tasks(env.Spark), yafim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		// YAFIM, observed: recorder attached and every export exercised.
		rec := obs.New()
		obsTrace, obsCtx, err := RunYAFIM(context.Background(), db, b.Support,
			env.Spark, env.tasks(env.Spark), yafim.Config{}, rdd.WithRecorder(rec))
		if err != nil {
			t.Fatal(err)
		}
		d := obs.Analyze(rec, obs.AnalyzeOptions{Cluster: &env.Spark})
		var sink bytes.Buffer
		if err := obs.WriteDiagnosis(&sink, d); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteJournal(&sink, rec); err != nil {
			t.Fatal(err)
		}
		if err := obs.WritePrometheus(&sink, rec); err != nil {
			t.Fatal(err)
		}
		if got, want := obsCtx.TotalDuration(), bareCtx.TotalDuration(); got != want {
			t.Errorf("seed %d: yafim observed clock %v != bare clock %v", seed, got, want)
		}
		if !obsTrace.Result.Equal(bareTrace.Result) {
			t.Errorf("seed %d: yafim results diverged under observation", seed)
		}

		// MapReduce, bare vs observed.
		bareMR, bareRunner, err := RunMRApriori(context.Background(), db, b.Support,
			env.Hadoop, env.tasks(env.Hadoop), mrapriori.Config{}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		mRec := obs.New()
		obsMR, obsRunner, err := RunMRApriori(context.Background(), db, b.Support,
			env.Hadoop, env.tasks(env.Hadoop), mrapriori.Config{}, mRec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteDiagnosis(&sink, obs.Analyze(mRec, obs.AnalyzeOptions{Cluster: &env.Hadoop})); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteJournal(&sink, mRec); err != nil {
			t.Fatal(err)
		}
		if got, want := obsRunner.TotalDuration(), bareRunner.TotalDuration(); got != want {
			t.Errorf("seed %d: mapreduce observed clock %v != bare clock %v", seed, got, want)
		}
		if !obsMR.Result.Equal(bareMR.Result) {
			t.Errorf("seed %d: mapreduce results diverged under observation", seed)
		}

		// Observed runs are reproducible: a repeat records identical counters
		// and exports identical bytes. One seed suffices for this half.
		if seed != 2014 {
			continue
		}
		rec2 := obs.New()
		if _, _, err := RunYAFIM(context.Background(), db, b.Support,
			env.Spark, env.tasks(env.Spark), yafim.Config{}, rdd.WithRecorder(rec2)); err != nil {
			t.Fatal(err)
		}
		if rec.Counters() != rec2.Counters() {
			t.Errorf("seed %d: repeated runs recorded different counters", seed)
		}
		var a, bb bytes.Buffer
		if err := obs.WritePrometheus(&a, rec); err != nil {
			t.Fatal(err)
		}
		if err := obs.WritePrometheus(&bb, rec2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), bb.Bytes()) {
			t.Errorf("seed %d: repeated runs exported different metrics", seed)
		}
	}
}
