package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"yafim/internal/chaos"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
	"yafim/internal/rdd"
	"yafim/internal/yafim"
)

// ChaosParams configures the chaos resilience sweep: the seed driving every
// fault decision and the point on the fault-free timeline where a whole node
// dies.
type ChaosParams struct {
	// Seed drives the fault plan; a given seed yields byte-identical
	// itemsets, makespans and counters on every run.
	Seed int64
	// CrashFrac places the node crash at this fraction of the engine's own
	// fault-free makespan (0 disables the crash). Each engine gets the crash
	// at the same relative progress point, so the comparison is fair even
	// though their absolute timelines differ vastly.
	CrashFrac float64
}

// DefaultChaosParams is the standard sweep configuration: the full default
// fault plan with a node crash at 40% of the run.
func DefaultChaosParams(seed int64) ChaosParams {
	return ChaosParams{Seed: seed, CrashFrac: 0.4}
}

// ChaosRun is one engine's chaotic run measured against its own fault-free
// baseline.
type ChaosRun struct {
	Engine    string
	FaultFree time.Duration
	Chaotic   time.Duration
	Counters  obs.Counters
}

// Overhead returns the relative recovery cost: (chaotic - faultfree) /
// faultfree.
func (r *ChaosRun) Overhead() float64 {
	if r.FaultFree <= 0 {
		return 0
	}
	return float64(r.Chaotic-r.FaultFree) / float64(r.FaultFree)
}

// RecoveryCost returns the absolute virtual time the engine spent recovering:
// chaotic makespan minus the fault-free baseline. This is the headline
// metric: MapReduce's relative overhead looks deceptively small because its
// fault-free baseline is already dominated by per-job JVM and setup costs,
// but the absolute time burned re-running map tasks and respawning JVMs
// dwarfs YAFIM's lineage recomputes.
func (r *ChaosRun) RecoveryCost() time.Duration {
	return r.Chaotic - r.FaultFree
}

// ChaosComparison is one benchmark mined by both engines under the same
// seeded fault plan, with all four runs (two fault-free, two chaotic)
// verified to produce identical frequent itemsets.
type ChaosComparison struct {
	Dataset   string
	Support   float64
	Params    ChaosParams
	YAFIM     ChaosRun
	MRApriori ChaosRun
}

// crashPlan builds the engine's fault plan: the default plan for the seed
// plus a node crash at the configured fraction of the engine's fault-free
// makespan. The crashed node is the cluster's last, keeping it distinct from
// the default plan's straggler so both faults stay observable.
func crashPlan(p ChaosParams, nodes int, faultFree time.Duration) *chaos.Plan {
	plan := chaos.DefaultPlan(p.Seed)
	if p.CrashFrac > 0 {
		plan.Crash = &chaos.NodeCrash{
			Node: nodes - 1,
			At:   time.Duration(float64(faultFree) * p.CrashFrac),
		}
	}
	return plan
}

// RunChaos mines the benchmark with both engines fault-free to establish
// baselines, then again under the seeded fault plan — transient task
// failures, a straggler node, shuffle-fetch and block-read failures, and a
// mid-run node crash — with the engines' mitigation (speculation,
// blacklisting, re-replication, lineage/stage recovery) active. All runs
// must produce identical itemsets; only the virtual timelines diverge. The
// recovery overheads quantify the paper's fault-tolerance argument: YAFIM's
// lineage recompute against MapReduce's full task re-execution and per-job
// restart costs.
func RunChaos(ctx context.Context, b Benchmark, env Env, p ChaosParams) (*ChaosComparison, error) {
	db, err := b.Gen(env.Scale, env.Seed)
	if err != nil {
		return nil, err
	}

	yBase, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark), yafim.Config{})
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos %s: yafim baseline: %w", b.Name, err)
	}
	mBase, _, err := RunMRApriori(ctx, db, b.Support, env.Hadoop, env.tasks(env.Hadoop),
		mrapriori.Config{}, nil, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos %s: mrapriori baseline: %w", b.Name, err)
	}
	if !yBase.Result.Equal(mBase.Result) {
		return nil, fmt.Errorf("experiments: chaos %s: fault-free engines disagree", b.Name)
	}

	yRec := obs.New()
	yPlan := crashPlan(p, env.Spark.Nodes, yBase.TotalDuration())
	yChaos, _, err := RunYAFIM(ctx, db, b.Support, env.Spark, env.tasks(env.Spark), yafim.Config{},
		rdd.WithRecorder(yRec), rdd.WithChaos(yPlan))
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos %s: yafim chaotic: %w", b.Name, err)
	}
	if !yChaos.Result.Equal(yBase.Result) {
		return nil, fmt.Errorf("experiments: chaos %s: chaos changed YAFIM's itemsets", b.Name)
	}

	mRec := obs.New()
	mPlan := crashPlan(p, env.Hadoop.Nodes, mBase.TotalDuration())
	mChaos, _, err := RunMRApriori(ctx, db, b.Support, env.Hadoop, env.tasks(env.Hadoop),
		mrapriori.Config{}, mRec, mPlan)
	if err != nil {
		return nil, fmt.Errorf("experiments: chaos %s: mrapriori chaotic: %w", b.Name, err)
	}
	if !mChaos.Result.Equal(mBase.Result) {
		return nil, fmt.Errorf("experiments: chaos %s: chaos changed MRApriori's itemsets", b.Name)
	}

	return &ChaosComparison{
		Dataset: b.Name,
		Support: b.Support,
		Params:  p,
		YAFIM: ChaosRun{
			Engine:    "yafim",
			FaultFree: yBase.TotalDuration(),
			Chaotic:   yChaos.TotalDuration(),
			Counters:  yRec.Counters(),
		},
		MRApriori: ChaosRun{
			Engine:    "mrapriori",
			FaultFree: mBase.TotalDuration(),
			Chaotic:   mChaos.TotalDuration(),
			Counters:  mRec.Counters(),
		},
	}, nil
}

// WriteChaos renders one chaos comparison: per-engine fault-free and chaotic
// makespans with the relative recovery overhead, followed by the mitigation
// counters that explain where the time went.
func WriteChaos(w io.Writer, c *ChaosComparison) {
	fmt.Fprintf(w, "%s (sup=%g%%, seed=%d, crash at %g%% of fault-free run)\n",
		c.Dataset, c.Support*100, c.Params.Seed, c.Params.CrashFrac*100)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tfault-free\tchaotic\trecovery\toverhead\tretries\tspec(won)\tblacklisted\tfetch-fail\tstages-rerun\trereplicated")
	for _, r := range []*ChaosRun{&c.YAFIM, &c.MRApriori} {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%+.1f%%\t%d\t%d(%d)\t%d\t%d\t%d\t%d\n",
			r.Engine,
			r.FaultFree.Round(time.Millisecond),
			r.Chaotic.Round(time.Millisecond),
			r.RecoveryCost().Round(time.Millisecond),
			r.Overhead()*100,
			r.Counters.TaskRetries,
			r.Counters.SpeculativeLaunches, r.Counters.SpeculativeWins,
			r.Counters.NodesBlacklisted,
			r.Counters.FetchFailures,
			r.Counters.StagesRerun,
			r.Counters.ReReplicatedBlocks)
	}
	tw.Flush()
	fmt.Fprintf(w, "recovery cost: mrapriori +%v vs yafim +%v (%.1fx); relative overhead %+.1f%% vs %+.1f%%\n",
		c.MRApriori.RecoveryCost().Round(time.Millisecond),
		c.YAFIM.RecoveryCost().Round(time.Millisecond),
		c.CostRatio(),
		c.MRApriori.Overhead()*100, c.YAFIM.Overhead()*100)
}

// CostRatio returns MRApriori's absolute recovery cost over YAFIM's (0 when
// YAFIM's cost is not positive).
func (c *ChaosComparison) CostRatio() float64 {
	y := c.YAFIM.RecoveryCost()
	if y <= 0 {
		return 0
	}
	return float64(c.MRApriori.RecoveryCost()) / float64(y)
}
