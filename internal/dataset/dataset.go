// Package dataset bridges transaction databases and storage: staging a
// database into the simulated DFS for the parallel engines, and loading
// the conventional .dat text format from the local file system.
package dataset

import (
	"bytes"
	"fmt"
	"os"

	"yafim/internal/dfs"
	"yafim/internal/itemset"
)

// Stage writes db into the DFS at path in .dat text format, the input both
// parallel engines read. It returns the number of bytes staged.
func Stage(fs *dfs.FileSystem, path string, db *itemset.DB) (int64, error) {
	var buf bytes.Buffer
	n, err := db.WriteTo(&buf)
	if err != nil {
		return 0, fmt.Errorf("dataset: encoding %s: %w", db.Name, err)
	}
	if err := fs.WriteFile(path, buf.Bytes(), nil); err != nil {
		return 0, fmt.Errorf("dataset: staging %s: %w", db.Name, err)
	}
	return n, nil
}

// LoadFile reads a .dat transaction file from the local file system. Parse
// failures carry file:line context and wrap the underlying cause (e.g. the
// *strconv.NumError for a non-numeric token), so callers can both display a
// precise location and inspect the cause with errors.As.
func LoadFile(name, path string) (*itemset.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	db, err := itemset.ReadDB(name, f)
	if err != nil {
		return nil, fmt.Errorf("dataset: parsing %s: %w", path, err)
	}
	return db, nil
}

// SaveFile writes db to the local file system in .dat format.
func SaveFile(db *itemset.DB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if _, err := db.WriteTo(f); err != nil {
		f.Close()
		return fmt.Errorf("dataset: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("dataset: closing %s: %w", path, err)
	}
	return nil
}
