package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"yafim/internal/dfs"
	"yafim/internal/itemset"
)

func sample() *itemset.DB {
	return itemset.NewDB("sample", [][]itemset.Item{{1, 2}, {3}, {10, 20, 30}})
}

func TestStage(t *testing.T) {
	fs := dfs.New(2)
	n, err := Stage(fs, "/d/sample.dat", sample())
	if err != nil {
		t.Fatal(err)
	}
	if n != sample().TotalBytes() {
		t.Fatalf("staged %d bytes, want %d", n, sample().TotalBytes())
	}
	data, err := fs.ReadFile("/d/sample.dat", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "1 2\n3\n10 20 30\n" {
		t.Fatalf("staged content %q", data)
	}
	if _, err := Stage(fs, "", sample()); err == nil {
		t.Error("empty path accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.dat")
	if err := SaveFile(sample(), path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile("sample", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 || !back.Transactions[2].Items.Equal(itemset.New(10, 20, 30)) {
		t.Fatalf("round trip mismatch: %+v", back.Transactions)
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile("x", filepath.Join(t.TempDir(), "missing.dat")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.dat")
	if err := SaveFile(sample(), bad); err != nil {
		t.Fatal(err)
	}
	// Overwrite with malformed content via SaveFile path checks.
	if err := SaveFile(sample(), filepath.Join(t.TempDir(), "no", "dir.dat")); err == nil {
		t.Error("save into missing directory succeeded")
	}
}

// TestLoadFileMalformed checks that parse failures carry file:line context
// and wrap the underlying strconv cause instead of surfacing it bare.
func TestLoadFileMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mangled.dat")
	if err := os.WriteFile(path, []byte("1 2 3\n4 oops 6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadFile("mangled", path)
	if err == nil {
		t.Fatal("malformed file loaded")
	}
	msg := err.Error()
	if !strings.Contains(msg, path) {
		t.Errorf("error does not name the file: %v", err)
	}
	if !strings.Contains(msg, "mangled:2") || !strings.Contains(msg, `"oops"`) {
		t.Errorf("error does not pinpoint line and token: %v", err)
	}
	var ne *strconv.NumError
	if !errors.As(err, &ne) {
		t.Errorf("strconv cause not wrapped: %v", err)
	}

	neg := filepath.Join(t.TempDir(), "neg.dat")
	if err := os.WriteFile(neg, []byte("1 -7 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadFile("neg", neg)
	if err == nil || !strings.Contains(err.Error(), "neg:1") {
		t.Errorf("negative item error missing line context: %v", err)
	}
}
