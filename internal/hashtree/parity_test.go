package hashtree

import (
	"math/rand"
	"reflect"
	"testing"

	"yafim/internal/itemset"
)

// The flat walk (flat.go) must be indistinguishable from the pointer walk
// it compacted: same candidates visited, in the same order, at the same
// elementary-operation charge. The reference below replays the original
// recursive algorithm over the pointer tree that Build still retains, so
// any drift in the flat layout, the dense item remapping, or the bitset
// containment test shows up as a parity failure here.

// refSubset is the pre-compaction pointer walk, preserved as the parity
// oracle.
func refSubset(t *Tree, items itemset.Itemset, visit func(i int)) int64 {
	if items.Len() < t.k {
		return 1
	}
	return refWalk(t, t.root, items, 0, visit)
}

func refWalk(t *Tree, n *node, items itemset.Itemset, from int, visit func(i int)) int64 {
	if n.children == nil {
		ops := int64(1)
		for _, e := range n.entries {
			ops += int64(t.k)
			if items.ContainsAll(t.sets[e]) {
				visit(e)
			}
		}
		return ops
	}
	ops := int64(1)
	seen := make([]bool, t.fanout)
	first := make([]int, t.fanout)
	for i := from; i < items.Len(); i++ {
		h := t.hash(items[i])
		if !seen[h] {
			seen[h] = true
			first[h] = i + 1
		}
	}
	for h := 0; h < t.fanout; h++ {
		if seen[h] {
			ops += refWalk(t, n.children[h], items, first[h], visit)
		}
	}
	return ops
}

// candidateCount caps a requested candidate count at the number of
// distinct k-subsets the universe can supply, so randomCandidates (shared
// with hashtree_test.go) terminates.
func candidateCount(rng *rand.Rand, max, k, universe int) int {
	distinct := 1
	for i := 0; i < k; i++ {
		distinct = distinct * (universe - i) / (i + 1)
	}
	n := rng.Intn(max) + 1
	if n > distinct {
		n = distinct
	}
	return n
}

func randomTransaction(rng *rand.Rand, maxLen, universe int) itemset.Itemset {
	items := make([]itemset.Item, rng.Intn(maxLen)+1)
	for i := range items {
		items[i] = itemset.Item(rng.Intn(universe))
	}
	return itemset.New(items...)
}

// TestFlatWalkMatchesPointerWalk drives random candidate sets and
// transactions through both walks across seeds and tree shapes, requiring
// identical visit sequences and identical ops.
func TestFlatWalkMatchesPointerWalk(t *testing.T) {
	shapes := []struct {
		name string
		opts []Option
	}{
		{"default", nil},
		{"deep", []Option{WithFanout(2), WithMaxLeaf(1)}},
		{"wide", []Option{WithFanout(64), WithMaxLeaf(4)}},
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(4) + 1
		universe := rng.Intn(40) + k + 1
		cands := randomCandidates(rng, candidateCount(rng, 200, k, universe), k, universe)
		for _, shape := range shapes {
			tree := Build(cands, shape.opts...)
			m := tree.NewMatcher()
			for row := 0; row < 50; row++ {
				tx := randomTransaction(rng, 12, universe+5)
				var wantVisits, gotVisits, pooledVisits []int
				wantOps := refSubset(tree, tx, func(i int) { wantVisits = append(wantVisits, i) })
				gotOps := m.Subset(tx, func(i int) { gotVisits = append(gotVisits, i) })
				pooledOps := tree.Subset(tx, func(i int) { pooledVisits = append(pooledVisits, i) })
				if !reflect.DeepEqual(gotVisits, wantVisits) {
					t.Fatalf("seed %d %s k=%d tx=%v: flat visits %v, pointer visits %v",
						seed, shape.name, k, tx, gotVisits, wantVisits)
				}
				if gotOps != wantOps {
					t.Fatalf("seed %d %s k=%d tx=%v: flat ops %d, pointer ops %d",
						seed, shape.name, k, tx, gotOps, wantOps)
				}
				if !reflect.DeepEqual(pooledVisits, wantVisits) || pooledOps != wantOps {
					t.Fatalf("seed %d %s: pooled Subset diverges from reference", seed, shape.name)
				}
			}
		}
	}
}

// TestCountSupportsMatchesBruteForce checks the end product — support
// counts — against a direct ContainsAll scan of every candidate per
// transaction.
func TestCountSupportsMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(3) + 1
		universe := rng.Intn(30) + k + 1
		cands := randomCandidates(rng, candidateCount(rng, 120, k, universe), k, universe)
		txs := make([]itemset.Transaction, rng.Intn(80)+1)
		for i := range txs {
			txs[i] = itemset.Transaction{TID: int64(i), Items: randomTransaction(rng, 10, universe)}
		}
		tree := Build(cands)
		got, _ := tree.CountSupports(txs)
		want := make([]int, len(cands))
		for _, tx := range txs {
			for i, c := range cands {
				if tx.Items.ContainsAll(c) {
					want[i]++
				}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: CountSupports %v, brute force %v", seed, got, want)
		}
	}
}

// TestMatcherReuseAcrossTrees guards the epoch/bitset scratch: a matcher
// hammered with many rows (epoch growth) must stay exact, and matchers of
// different trees must not share state through the item index.
func TestMatcherReuseAcrossTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	candsA := randomCandidates(rng, 40, 2, 20)
	candsB := randomCandidates(rng, 40, 3, 35)
	treeA, treeB := Build(candsA), Build(candsB)
	mA, mB := treeA.NewMatcher(), treeB.NewMatcher()
	for row := 0; row < 2000; row++ {
		tx := randomTransaction(rng, 9, 40)
		for _, pair := range []struct {
			tree *Tree
			m    *Matcher
		}{{treeA, mA}, {treeB, mB}} {
			var got, want []int
			gotOps := pair.m.Subset(tx, func(i int) { got = append(got, i) })
			wantOps := refSubset(pair.tree, tx, func(i int) { want = append(want, i) })
			if !reflect.DeepEqual(got, want) || gotOps != wantOps {
				t.Fatalf("row %d: reused matcher visits %v ops %d, want %v ops %d",
					row, got, gotOps, want, wantOps)
			}
		}
	}
}
