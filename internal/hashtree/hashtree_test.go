package hashtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/itemset"
)

func sets(raw ...[]itemset.Item) []itemset.Itemset {
	out := make([]itemset.Itemset, len(raw))
	for i, r := range raw {
		out[i] = itemset.New(r...)
	}
	return out
}

func collectMatches(t *Tree, tr itemset.Itemset) []itemset.Itemset {
	var got []itemset.Itemset
	t.Subset(tr, func(i int) { got = append(got, t.Candidate(i)) })
	itemset.SortSets(got)
	return got
}

func TestSubsetBasic(t *testing.T) {
	tree := Build(sets(
		[]itemset.Item{1, 2}, []itemset.Item{1, 3}, []itemset.Item{2, 3},
		[]itemset.Item{2, 4}, []itemset.Item{3, 5},
	))
	if tree.K() != 2 || tree.Len() != 5 {
		t.Fatalf("tree shape k=%d len=%d", tree.K(), tree.Len())
	}
	got := collectMatches(tree, itemset.New(1, 2, 3))
	want := sets([]itemset.Item{1, 2}, []itemset.Item{1, 3}, []itemset.Item{2, 3})
	if len(got) != len(want) {
		t.Fatalf("matches = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("matches = %v, want %v", got, want)
		}
	}
}

func TestSubsetShortTransaction(t *testing.T) {
	tree := Build(sets([]itemset.Item{1, 2, 3}))
	if got := collectMatches(tree, itemset.New(1, 2)); got != nil {
		t.Fatalf("short transaction matched %v", got)
	}
}

func TestSubsetNoMatch(t *testing.T) {
	tree := Build(sets([]itemset.Item{1, 2}, []itemset.Item{3, 4}))
	if got := collectMatches(tree, itemset.New(5, 6, 7)); got != nil {
		t.Fatalf("unexpected matches %v", got)
	}
}

func TestLeafSplitting(t *testing.T) {
	// More candidates than one leaf can hold forces interior nodes; every
	// candidate must still be found in a transaction containing all items.
	var cands []itemset.Itemset
	var all []itemset.Item
	for a := itemset.Item(0); a < 12; a++ {
		all = append(all, a)
		for b := a + 1; b < 12; b++ {
			cands = append(cands, itemset.New(a, b))
		}
	}
	tree := Build(cands, WithMaxLeaf(2), WithFanout(3))
	got := collectMatches(tree, itemset.New(all...))
	if len(got) != len(cands) {
		t.Fatalf("found %d of %d candidates after splits", len(got), len(cands))
	}
	if tree.root.children == nil {
		t.Fatal("tree never split despite tiny leaves")
	}
}

func TestDeepSplitStopsAtK(t *testing.T) {
	// Candidates identical in their first items cannot split forever; the
	// leaf at depth k must simply grow.
	cands := sets(
		[]itemset.Item{1, 2, 3},
		[]itemset.Item{1, 2, 6},
		[]itemset.Item{1, 2, 9},
		[]itemset.Item{1, 2, 12},
	)
	// Fanout 3: items 3,6,9,12 all hash to 0, as do 1 and 2 partially.
	tree := Build(cands, WithMaxLeaf(1), WithFanout(3))
	got := collectMatches(tree, itemset.New(1, 2, 3, 6, 9, 12))
	if len(got) != 4 {
		t.Fatalf("found %d of 4 clustered candidates", len(got))
	}
}

func TestBuildPanics(t *testing.T) {
	cases := map[string]func(){
		"empty":         func() { Build(nil) },
		"mixed lengths": func() { Build(sets([]itemset.Item{1}, []itemset.Item{1, 2})) },
		"zero length":   func() { Build([]itemset.Itemset{{}}) },
		"bad fanout":    func() { Build(sets([]itemset.Item{1}), WithFanout(1)) },
		"bad leaf":      func() { Build(sets([]itemset.Item{1}), WithMaxLeaf(0)) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCountSupports(t *testing.T) {
	tree := Build(sets([]itemset.Item{1, 2}, []itemset.Item{2, 3}))
	txs := []itemset.Transaction{
		{TID: 0, Items: itemset.New(1, 2, 3)},
		{TID: 1, Items: itemset.New(1, 2)},
		{TID: 2, Items: itemset.New(2, 3)},
		{TID: 3, Items: itemset.New(4)},
	}
	counts, ops := tree.CountSupports(txs)
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if ops <= 0 {
		t.Fatalf("ops = %d", ops)
	}
}

func TestSerializedBytesGrowsWithTree(t *testing.T) {
	small := Build(sets([]itemset.Item{1, 2}))
	big := Build(sets([]itemset.Item{1, 2}, []itemset.Item{3, 4}, []itemset.Item{5, 6}))
	if small.SerializedBytes() >= big.SerializedBytes() {
		t.Fatal("SerializedBytes not monotone in candidate count")
	}
}

// randomCandidates builds n distinct random k-itemsets over [0,universe).
func randomCandidates(rng *rand.Rand, n, k, universe int) []itemset.Itemset {
	seen := map[string]bool{}
	var out []itemset.Itemset
	for len(out) < n {
		picks := rng.Perm(universe)[:k]
		items := make([]itemset.Item, k)
		for i, p := range picks {
			items[i] = itemset.Item(p)
		}
		s := itemset.New(items...)
		if !seen[s.Key()] {
			seen[s.Key()] = true
			out = append(out, s)
		}
	}
	return out
}

// Property: for random candidate sets, transactions, and tree shapes, the
// hash tree finds exactly the candidates a brute-force subset scan finds.
func TestSubsetMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64, k8, fan8, leaf8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(k8%4) + 1
		fanout := int(fan8%7) + 2
		maxLeaf := int(leaf8%5) + 1
		universe := 20
		n := rng.Intn(40) + 1
		maxC := 1
		for i := 0; i < k; i++ {
			maxC = maxC * (universe - i) / (i + 1)
		}
		if n > maxC {
			n = maxC
		}
		cands := randomCandidates(rng, n, k, universe)
		tree := Build(cands, WithFanout(fanout), WithMaxLeaf(maxLeaf))

		for trial := 0; trial < 5; trial++ {
			tlen := rng.Intn(universe)
			picks := rng.Perm(universe)[:tlen]
			items := make([]itemset.Item, tlen)
			for i, p := range picks {
				items[i] = itemset.Item(p)
			}
			tr := itemset.New(items...)

			got := map[string]bool{}
			tree.Subset(tr, func(i int) { got[tree.Candidate(i).Key()] = true })

			want := map[string]bool{}
			for _, c := range cands {
				if tr.ContainsAll(c) {
					want[c.Key()] = true
				}
			}
			if len(got) != len(want) {
				return false
			}
			for key := range want {
				if !got[key] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: each matching candidate is visited exactly once (no duplicate
// visits from multiple hash paths).
func TestSubsetVisitsOnceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cands := randomCandidates(rng, 30, 3, 15)
		tree := Build(cands, WithFanout(4), WithMaxLeaf(2))
		items := make([]itemset.Item, 15)
		for i := range items {
			items[i] = itemset.Item(i)
		}
		tr := itemset.New(items...) // contains everything
		visits := map[int]int{}
		tree.Subset(tr, func(i int) { visits[i]++ })
		if len(visits) != len(cands) {
			return false
		}
		for _, n := range visits {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestCandidatesAccessor(t *testing.T) {
	cands := sets([]itemset.Item{1, 2}, []itemset.Item{3, 4})
	tree := Build(cands)
	got := tree.Candidates()
	if len(got) != 2 || !got[0].Equal(cands[0]) {
		t.Fatalf("Candidates = %v", got)
	}
}
