package hashtree

import (
	"math/rand"
	"testing"

	"yafim/internal/itemset"
)

func benchFixture(nCands, k, universe, txLen int) ([]itemset.Itemset, []itemset.Itemset) {
	rng := rand.New(rand.NewSource(1))
	cands := randomCandidates(rng, nCands, k, universe)
	txs := make([]itemset.Itemset, 256)
	for i := range txs {
		picks := rng.Perm(universe)[:txLen]
		items := make([]itemset.Item, txLen)
		for j, p := range picks {
			items[j] = itemset.Item(p)
		}
		txs[i] = itemset.New(items...)
	}
	return cands, txs
}

func BenchmarkBuild(b *testing.B) {
	cands, _ := benchFixture(10000, 3, 200, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(cands)
	}
}

func BenchmarkSubset(b *testing.B) {
	cands, txs := benchFixture(10000, 3, 200, 20)
	tree := Build(cands)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		tree.Subset(txs[i%len(txs)], func(int) { n++ })
	}
}

// BenchmarkSubsetBruteForce is the baseline Subset replaces; compare with
// BenchmarkSubset to see the tree's advantage grow with candidate count.
func BenchmarkSubsetBruteForce(b *testing.B) {
	cands, txs := benchFixture(10000, 3, 200, 20)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		tx := txs[i%len(txs)]
		for _, c := range cands {
			if tx.ContainsAll(c) {
				n++
			}
		}
	}
}

func BenchmarkCountSupports(b *testing.B) {
	cands, txs := benchFixture(2000, 2, 100, 15)
	tree := Build(cands)
	trs := make([]itemset.Transaction, len(txs))
	for i, t := range txs {
		trs[i] = itemset.Transaction{TID: int64(i), Items: t}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.CountSupports(trs)
	}
}
