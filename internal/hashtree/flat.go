package hashtree

import (
	"yafim/internal/itemset"
)

// The flat layout is built once at the end of Build by compacting the
// pointer tree: nodes live in one slice, children of an interior node are a
// contiguous fanout-sized window of childIdx, and leaf entries are windows
// of entryIdx. Candidate items are remapped to dense int32 ids so the leaf
// containment test is one bitset probe per item against the transaction's
// cached encoding, with no pointer chasing into the candidate slices. The
// walk allocates nothing: all scratch state lives in a Matcher.

// flatNode is one compacted tree node. child is the offset of the node's
// fanout children in Tree.childIdx, or -1 for a leaf whose candidate
// indexes occupy entryIdx[entryLo:entryHi].
type flatNode struct {
	child   int32
	entryLo int32
	entryHi int32
}

// compact freezes the pointer tree into the flat arrays and builds the
// dense item remapping. Entry order within each leaf and child order within
// each interior node are preserved, so the flat walk enumerates candidates
// in exactly the order the pointer walk did.
func (t *Tree) compact() {
	t.index = itemset.NewItemIndex(t.sets)
	t.candDense = make([]int32, 0, len(t.sets)*t.k)
	for _, c := range t.sets {
		t.candDense = t.index.Remap(c, t.candDense)
	}
	t.flatten(t.root)
	t.matchers.New = func() any { return t.NewMatcher() }
}

func (t *Tree) flatten(n *node) int32 {
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, flatNode{child: -1})
	if n.children == nil {
		lo := int32(len(t.entryIdx))
		for _, e := range n.entries {
			t.entryIdx = append(t.entryIdx, int32(e))
		}
		t.nodes[id].entryLo, t.nodes[id].entryHi = lo, int32(len(t.entryIdx))
		return id
	}
	base := int32(len(t.childIdx))
	t.nodes[id].child = base
	t.childIdx = append(t.childIdx, make([]int32, t.fanout)...)
	for h, c := range n.children {
		t.childIdx[int(base)+h] = t.flatten(c)
	}
	return id
}

// Matcher holds the reusable scratch state of one subset-enumeration
// worker: the per-depth visited masks of the walk and the transaction's
// bitset encoding. A Matcher is not safe for concurrent use; each worker
// owns one (NewMatcher), or lets Tree.Subset borrow one from the tree's
// pool.
type Matcher struct {
	t *Tree
	// mark/first are k stacked fanout-sized visited masks, one per interior
	// depth, validated by epoch so they never need clearing between rows.
	mark  []uint64
	first []int32
	epoch uint64
	// bits caches the current transaction's dense-item encoding.
	bits *itemset.Bitset
}

// NewMatcher returns a matcher with freshly allocated scratch buffers.
// Callers that process many transactions (one partition, one map task)
// should create one matcher and reuse it for every row.
func (t *Tree) NewMatcher() *Matcher {
	return &Matcher{
		t:     t,
		mark:  make([]uint64, t.k*t.fanout),
		first: make([]int32, t.k*t.fanout),
		bits:  itemset.NewBitset(t.index.Len()),
	}
}

// Subset calls visit(i) for every candidate i contained in the transaction
// items (which must be canonical), returning the elementary operations
// performed under the same accounting as Tree.Subset.
func (m *Matcher) Subset(items itemset.Itemset, visit func(i int)) int64 {
	t := m.t
	if items.Len() < t.k {
		return 1
	}
	m.bits.ClearAll()
	t.index.Encode(items, m.bits)
	return m.walk(0, items, 0, 0, visit)
}

// walk descends the flat tree. At an interior node, the first transaction
// position hashing to each child is recorded in the epoch-stamped mask; at
// a leaf, every stored candidate is verified against the transaction's
// bitset encoding.
func (m *Matcher) walk(node int32, items itemset.Itemset, from, depth int, visit func(i int)) int64 {
	t := m.t
	n := t.nodes[node]
	if n.child < 0 {
		ops := int64(1)
		k := t.k
		for _, e := range t.entryIdx[n.entryLo:n.entryHi] {
			ops += int64(k)
			if m.contains(e) {
				visit(int(e))
			}
		}
		return ops
	}
	ops := int64(1)
	base := depth * t.fanout
	m.epoch++
	e := m.epoch
	for i := from; i < items.Len(); i++ {
		h := base + t.hash(items[i])
		if m.mark[h] != e {
			m.mark[h] = e
			m.first[h] = int32(i + 1)
		}
	}
	for h := 0; h < t.fanout; h++ {
		if m.mark[base+h] == e {
			ops += m.walk(t.childIdx[int(n.child)+h], items, int(m.first[base+h]), depth+1, visit)
		}
	}
	return ops
}

// contains reports whether candidate cand's every item is set in the
// current transaction encoding.
func (m *Matcher) contains(cand int32) bool {
	k := int32(m.t.k)
	for _, d := range m.t.candDense[cand*k : (cand+1)*k] {
		if !m.bits.Get(int(d)) {
			return false
		}
	}
	return true
}
