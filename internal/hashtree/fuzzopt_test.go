package hashtree

import (
	"fmt"
	"math/rand"
	"testing"

	"yafim/internal/itemset"
)

func TestFuzzSubsetShapes(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		nItems := 2 + rng.Intn(30)
		// random distinct candidates of length k
		candSet := map[string]itemset.Itemset{}
		for tries := 0; tries < 60; tries++ {
			raw := make([]itemset.Item, k)
			for i := range raw {
				raw[i] = itemset.Item(rng.Intn(nItems))
			}
			c := itemset.New(raw...)
			if c.Len() == k {
				candSet[c.Key()] = c
			}
		}
		var cands []itemset.Itemset
		for _, c := range candSet {
			cands = append(cands, c)
		}
		if len(cands) == 0 {
			continue
		}
		itemset.SortSets(cands)

		var txs []itemset.Transaction
		for i := 0; i < 30; i++ {
			l := rng.Intn(nItems)
			raw := make([]itemset.Item, l)
			for j := range raw {
				raw[j] = itemset.Item(rng.Intn(nItems))
			}
			txs = append(txs, itemset.Transaction{TID: int64(i), Items: itemset.New(raw...)})
		}

		// brute-force reference
		ref := make([]int, len(cands))
		for _, tr := range txs {
			for i, c := range cands {
				if tr.Items.ContainsAll(c) {
					ref[i]++
				}
			}
		}

		shapes := [][]Option{
			nil,
			{WithFanout(2), WithMaxLeaf(1)},
			{WithFanout(3), WithMaxLeaf(2)},
			{WithFanout(2), WithMaxLeaf(16)},
			{WithFanout(16), WithMaxLeaf(1)},
		}
		for si, opts := range shapes {
			tree := Build(cands, opts...)
			counts, _ := tree.CountSupports(txs)
			for i := range ref {
				if counts[i] != ref[i] {
					t.Fatalf("seed=%d shape=%d cand %v: got %d want %d", seed, si, cands[i], counts[i], ref[i])
				}
			}
		}
	}
	fmt.Println("ok")
}
