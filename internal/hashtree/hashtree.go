// Package hashtree implements the candidate hash tree of Agrawal &
// Srikant's Apriori, the structure YAFIM broadcasts to workers in Phase II
// to speed up finding which candidate (k+1)-itemsets occur in each
// transaction.
//
// Interior nodes hash the next item of a candidate into a fixed fanout of
// children; leaves hold a bounded list of candidates and split when they
// overflow (unless the tree has already consumed all k items, in which case
// the leaf grows). Subset enumeration walks the tree against a transaction,
// pruning whole subtrees that no prefix of the transaction can reach.
package hashtree

import (
	"fmt"
	"sync"

	"yafim/internal/itemset"
)

// Default structural parameters, chosen per the original paper's guidance.
const (
	DefaultFanout  = 8
	DefaultMaxLeaf = 16
)

// Tree is a hash tree over candidate itemsets of one fixed length k. Build
// inserts candidates into a pointer tree, then compacts it into a flat
// array layout (flat.go) that subset enumeration walks allocation-free.
type Tree struct {
	k         int
	fanout    int
	fanoutSet bool
	maxLeaf   int
	root      *node
	sets      []itemset.Itemset // candidates by index

	// Flat layout, built by compact: see flat.go.
	index     *itemset.ItemIndex // dense remap of the candidate item universe
	candDense []int32            // k dense item ids per candidate, by index
	nodes     []flatNode
	childIdx  []int32
	entryIdx  []int32
	matchers  sync.Pool // *Matcher scratch for Tree.Subset
}

type node struct {
	children []*node // non-nil: interior node
	entries  []int   // leaf: candidate indices into Tree.sets
}

// Option configures tree construction.
type Option func(*Tree)

// WithFanout sets the hash fanout of interior nodes.
func WithFanout(n int) Option {
	return func(t *Tree) { t.fanout, t.fanoutSet = n, true }
}

// WithMaxLeaf sets the leaf capacity before splitting.
func WithMaxLeaf(n int) Option {
	return func(t *Tree) { t.maxLeaf = n }
}

// Build constructs a hash tree over the given candidate k-itemsets. All
// candidates must be the same length k >= 1 and must be canonical (sorted);
// Build panics otherwise, because a malformed candidate set poisons every
// support count derived from it.
func Build(candidates []itemset.Itemset, opts ...Option) *Tree {
	if len(candidates) == 0 {
		panic("hashtree: Build with no candidates")
	}
	t := &Tree{
		k:       candidates[0].Len(),
		fanout:  DefaultFanout,
		maxLeaf: DefaultMaxLeaf,
		root:    &node{},
		sets:    candidates,
	}
	for _, o := range opts {
		o(t)
	}
	if t.k < 1 {
		panic("hashtree: candidates must have at least one item")
	}
	if !t.fanoutSet {
		t.fanout = adaptiveFanout(len(candidates), t.k, t.maxLeaf)
	}
	if t.fanout < 2 || t.maxLeaf < 1 {
		panic(fmt.Sprintf("hashtree: bad shape fanout=%d maxLeaf=%d", t.fanout, t.maxLeaf))
	}
	for i, c := range candidates {
		if c.Len() != t.k {
			panic(fmt.Sprintf("hashtree: candidate %d has length %d, want %d", i, c.Len(), t.k))
		}
		t.insert(t.root, 0, i)
	}
	t.compact()
	return t
}

// K returns the candidate itemset length.
func (t *Tree) K() int { return t.k }

// Len returns the number of candidates stored.
func (t *Tree) Len() int { return len(t.sets) }

// Candidate returns the candidate with the given index.
func (t *Tree) Candidate(i int) itemset.Itemset { return t.sets[i] }

// Candidates returns the backing candidate slice; callers must not modify
// it.
func (t *Tree) Candidates() []itemset.Itemset { return t.sets }

// adaptiveFanout sizes interior nodes so that a tree of n k-candidates
// keeps expected leaf occupancy near maxLeaf even when k is small: leaves
// stop splitting at depth k, so with a fixed small fanout a large C2 would
// pile thousands of candidates into each leaf and subset enumeration would
// degenerate to a linear scan.
func adaptiveFanout(n, k, maxLeaf int) int {
	fanout := DefaultFanout
	for fanout < 1<<14 && pow(fanout, k) < n/maxLeaf {
		fanout *= 2
	}
	return fanout
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		if out > 1<<30 {
			return out
		}
		out *= base
	}
	return out
}

func (t *Tree) hash(it itemset.Item) int { return int(it) % t.fanout }

func (t *Tree) insert(n *node, depth, idx int) {
	for n.children != nil {
		n = n.children[t.hash(t.sets[idx][depth])]
		depth++
	}
	n.entries = append(n.entries, idx)
	if len(n.entries) > t.maxLeaf && depth < t.k {
		// Split: redistribute entries one level deeper.
		n.children = make([]*node, t.fanout)
		for i := range n.children {
			n.children[i] = &node{}
		}
		entries := n.entries
		n.entries = nil
		for _, e := range entries {
			t.insert(n.children[t.hash(t.sets[e][depth])], depth+1, e)
		}
	}
}

// Subset calls visit(i) for every candidate i whose itemset is contained in
// the transaction items (which must be canonical). It returns the number of
// elementary operations performed (node hops plus per-candidate membership
// checks), which callers use to charge CPU time in the performance model.
// The walk borrows a pooled Matcher; workers processing many rows should
// hold their own (NewMatcher) to skip even the pool round-trip.
func (t *Tree) Subset(items itemset.Itemset, visit func(i int)) int64 {
	m := t.matchers.Get().(*Matcher)
	ops := m.Subset(items, visit)
	t.matchers.Put(m)
	return ops
}

// CountSupports scans the transactions and returns the support count of
// every candidate, plus the total elementary operations performed. It is
// the sequential reference used by both the driver programs and tests.
func (t *Tree) CountSupports(transactions []itemset.Transaction) (counts []int, ops int64) {
	counts = make([]int, t.Len())
	m := t.NewMatcher()
	for _, tr := range transactions {
		ops += m.Subset(tr.Items, func(i int) { counts[i]++ })
	}
	return counts, ops
}

// SerializedBytes estimates the wire size of the tree for broadcast cost
// accounting: four bytes per item plus per-candidate and per-node framing.
func (t *Tree) SerializedBytes() int64 {
	return int64(t.Len())*int64(4*t.k+8) + 64
}
