package sim

import (
	"sort"
	"time"

	"yafim/internal/cluster"
)

// Placed is a task cost with optional data-locality preferences: the nodes
// holding a local replica of the task's input. An empty Pref means the task
// can run anywhere at no penalty (e.g. shuffle reads, already remote).
type Placed struct {
	Cost
	Pref []int
}

// MakespanPlaced schedules tasks with locality preferences, modelling the
// delay-scheduling policy of both Hadoop and Spark (spark.locality.wait):
// a task runs on a preferred node unless that would delay it beyond the
// configured locality wait relative to the best core anywhere; when it does
// run remotely, its input bytes travel over the network instead of the
// local disk, and the task pays for both.
func MakespanPlaced(cfg cluster.Config, tasks []Placed) time.Duration {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(tasks) == 0 {
		return cfg.StageOverhead
	}
	durs := make([]time.Duration, len(tasks))
	for i, t := range tasks {
		durs[i] = TaskTime(cfg, t.Cost)
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return durs[order[a]] > durs[order[b]] })

	cores := make([]time.Duration, cfg.TotalCores())
	nodeOf := func(core int) int { return core / cfg.CoresPerNode }
	for _, ti := range order {
		best := 0
		for ci := 1; ci < len(cores); ci++ {
			if cores[ci] < cores[best] {
				best = ci
			}
		}
		chosen := best
		remote := false
		if prefs := tasks[ti].Pref; len(prefs) > 0 {
			// Least-loaded core on a preferred node.
			bestLocal := -1
			for ci := 0; ci < len(cores); ci++ {
				if !contains(prefs, nodeOf(ci)) {
					continue
				}
				if bestLocal < 0 || cores[ci] < cores[bestLocal] {
					bestLocal = ci
				}
			}
			switch {
			case bestLocal >= 0 && cores[bestLocal] <= cores[best]+localityWait(cfg):
				chosen = bestLocal
			default:
				remote = !contains(prefs, nodeOf(best))
			}
		}
		d := durs[ti]
		if remote {
			d += remoteReadPenalty(cfg, tasks[ti].Cost)
		}
		cores[chosen] += d
	}
	var makespan time.Duration
	for _, load := range cores {
		if load > makespan {
			makespan = load
		}
	}
	return cfg.StageOverhead + makespan
}

// localityWait is how long a task will queue behind a busy preferred node
// before accepting a remote slot — Spark's 3 s default scaled to our task
// granularity: ten task launches.
func localityWait(cfg cluster.Config) time.Duration {
	return 10 * cfg.TaskLaunch
}

// remoteReadPenalty is the extra time a non-local task spends pulling its
// input across the network.
func remoteReadPenalty(cfg cluster.Config, c Cost) time.Duration {
	share := float64(cfg.CoresPerNode)
	secs := float64(c.DiskRead) / (cfg.NetBWPerSec / share)
	return time.Duration(secs * float64(time.Second))
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// RunStagePlaced builds a StageReport for a stage whose tasks carry
// locality preferences.
func RunStagePlaced(cfg cluster.Config, name string, tasks []Placed) StageReport {
	var total Cost
	for _, t := range tasks {
		total = total.Add(t.Cost)
	}
	return StageReport{
		Name:     name,
		Tasks:    len(tasks),
		Total:    total,
		Makespan: MakespanPlaced(cfg, tasks),
	}
}
