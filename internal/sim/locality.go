package sim

import (
	"time"

	"yafim/internal/cluster"
)

// Placed is a task cost with optional data-locality preferences: the nodes
// holding a local replica of the task's input. An empty Pref means the task
// can run anywhere at no penalty (e.g. shuffle reads, already remote).
// Relaunches counts failed prior attempts of the task; each one charges an
// extra cfg.TaskLaunch for re-spawning the task's container, which is how
// the per-attempt JVM respawn cost of MapReduce (300 ms) versus Spark's
// resident executors (4 ms) enters the fault-recovery comparison.
type Placed struct {
	Cost
	Pref       []int
	Relaunches int
}

// TaskPlacement describes where and when the deterministic schedule ran one
// task: the node and (node-local) core it was assigned, its start and end
// offsets relative to the start of the stage body (i.e. after the fixed
// per-stage scheduling overhead), and whether it read its input remotely.
// This is the per-task detail the telemetry layer turns into trace spans.
type TaskPlacement struct {
	Task   int // index into the stage's task list
	Node   int
	Core   int // core within Node
	Start  time.Duration
	End    time.Duration
	Remote bool
}

// PlaceTasks schedules tasks with locality preferences and returns the full
// schedule — one placement per task, indexed like tasks — plus the schedule
// length (excluding the per-stage overhead). It implements the
// delay-scheduling policy of both Hadoop and Spark (spark.locality.wait):
// a task runs on a preferred node unless that would delay it beyond the
// configured locality wait relative to the best core anywhere; when it does
// run remotely, its input bytes travel over the network instead of the
// local disk, and the task pays for both. Tasks are placed longest first
// (LPT) with all ties broken on the lowest index, so the schedule is
// deterministic.
func PlaceTasks(cfg cluster.Config, tasks []Placed) ([]TaskPlacement, time.Duration) {
	placements, _, makespan := PlaceTasksOpts(cfg, tasks, StageOpts{})
	return placements, makespan
}

// MakespanPlaced schedules tasks with locality preferences (see PlaceTasks)
// and returns the resulting stage completion time, including the per-stage
// scheduling overhead.
func MakespanPlaced(cfg cluster.Config, tasks []Placed) time.Duration {
	_, makespan := PlaceTasks(cfg, tasks)
	return cfg.StageOverhead + makespan
}

// localityWait is how long a task will queue behind a busy preferred node
// before accepting a remote slot — Spark's 3 s default scaled to our task
// granularity: ten task launches.
func localityWait(cfg cluster.Config) time.Duration {
	return 10 * cfg.TaskLaunch
}

// ExpectedTaskTime is the service time the performance model predicts for a
// task of cost c on a healthy node of cfg: the base TaskTime plus one task
// launch per prior failed attempt, plus the remote-read penalty when the task
// ran without data locality. The straggler analysis compares this against the
// scheduled duration — a task that ran much longer than its cost predicts was
// slowed by its environment (an injected node factor), not by its data.
func ExpectedTaskTime(cfg cluster.Config, c Cost, relaunches int, remote bool) time.Duration {
	d := TaskTime(cfg, c) + time.Duration(relaunches)*cfg.TaskLaunch
	if remote {
		d += remoteReadPenalty(cfg, c)
	}
	return d
}

// remoteReadPenalty is the extra time a non-local task spends pulling its
// input across the network.
func remoteReadPenalty(cfg cluster.Config, c Cost) time.Duration {
	share := float64(cfg.CoresPerNode)
	secs := float64(c.DiskRead) / (cfg.NetBWPerSec / share)
	return time.Duration(secs * float64(time.Second))
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// RunStagePlaced builds a StageReport for a stage whose tasks carry
// locality preferences.
func RunStagePlaced(cfg cluster.Config, name string, tasks []Placed) StageReport {
	rep, _ := RunStageScheduled(cfg, name, tasks)
	return rep
}

// RunStageScheduled builds a StageReport for a stage whose tasks carry
// locality preferences and additionally returns the full deterministic
// schedule — the per-task placements and run intervals the telemetry layer
// records as task spans.
func RunStageScheduled(cfg cluster.Config, name string, tasks []Placed) (StageReport, []TaskPlacement) {
	var total Cost
	for _, t := range tasks {
		total = total.Add(t.Cost)
	}
	placements, makespan := PlaceTasks(cfg, tasks)
	return StageReport{
		Name:     name,
		Tasks:    len(tasks),
		Total:    total,
		Makespan: cfg.StageOverhead + makespan,
	}, placements
}
