package sim

import "testing"

func TestCostSub(t *testing.T) {
	a := Cost{CPUOps: 100, DiskRead: 50, DiskWrite: 20, Net: 10}
	b := Cost{CPUOps: 40, DiskRead: 50, DiskWrite: 5, Net: 12}
	got := a.Sub(b)
	want := Cost{CPUOps: 60, DiskRead: 0, DiskWrite: 15, Net: -2}
	if got != want {
		t.Fatalf("Sub = %+v, want %+v", got, want)
	}
	if !a.Sub(a).IsZero() {
		t.Fatal("a - a not zero")
	}
}

func TestCostIsZero(t *testing.T) {
	if !(Cost{}).IsZero() {
		t.Fatal("zero value not zero")
	}
	for _, c := range []Cost{
		{CPUOps: 1}, {DiskRead: 1}, {DiskWrite: 1}, {Net: 1},
	} {
		if c.IsZero() {
			t.Fatalf("%+v reported zero", c)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{1, "1B"},
		{1023, "1023B"},
		{1024, "1.0KB"},
		{1536, "1.5KB"},
		{1 << 20, "1.0MB"},
		{5<<20 + 1<<19, "5.5MB"},
		{1 << 30, "1.0GB"},
		{3 << 30, "3.0GB"},
		{-512, "-512B"},
		{-(1 << 21), "-2.0MB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.n); got != c.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestCostString(t *testing.T) {
	c := Cost{CPUOps: 12, DiskRead: 2048, DiskWrite: 100, Net: 3 << 20}
	if got, want := c.String(), "cpu=12 dr=2.0KB dw=100B net=3.0MB"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
