package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"yafim/internal/cluster"
)

func testConfig(nodes, cores int) cluster.Config {
	return cluster.Config{
		Name:         "test",
		Nodes:        nodes,
		CoresPerNode: cores,
		CPUOpsPerSec: 1e6,
		DiskBWPerSec: 1e6,
		NetBWPerSec:  1e6,
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{CPUOps: 1, DiskRead: 2, DiskWrite: 3, Net: 4}
	b := Cost{CPUOps: 10, DiskRead: 20, DiskWrite: 30, Net: 40}
	got := a.Add(b)
	want := Cost{CPUOps: 11, DiskRead: 22, DiskWrite: 33, Net: 44}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
	if !(Cost{}).IsZero() || got.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
}

func TestLedgerConcurrent(t *testing.T) {
	var l Ledger
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				l.AddCPU(1)
				l.AddDiskRead(2)
				l.AddDiskWrite(3)
				l.AddNet(4)
			}
		}()
	}
	wg.Wait()
	got := l.Total()
	want := Cost{CPUOps: 8000, DiskRead: 16000, DiskWrite: 24000, Net: 32000}
	if got != want {
		t.Fatalf("ledger total = %+v, want %+v", got, want)
	}
	if r := l.Reset(); r != want {
		t.Fatalf("Reset returned %+v", r)
	}
	if !l.Total().IsZero() {
		t.Fatal("ledger not cleared by Reset")
	}
}

func TestTaskTimeComponents(t *testing.T) {
	cfg := testConfig(1, 2)
	cfg.TaskLaunch = 10 * time.Millisecond
	// 1e6 CPU ops at 1e6 ops/s = 1s. 500e3 disk bytes at (1e6/2) B/s = 1s.
	// 250e3 net bytes at (1e6/2) B/s = 0.5s.
	got := TaskTime(cfg, Cost{CPUOps: 1e6, DiskRead: 250e3, DiskWrite: 250e3, Net: 250e3})
	want := 10*time.Millisecond + 2500*time.Millisecond
	if got != want {
		t.Fatalf("TaskTime = %v, want %v", got, want)
	}
}

func TestMakespanSingleCoreIsSum(t *testing.T) {
	cfg := testConfig(1, 1)
	tasks := []Cost{{CPUOps: 1e6}, {CPUOps: 2e6}, {CPUOps: 3e6}}
	got := Makespan(cfg, tasks)
	if want := 6 * time.Second; got != want {
		t.Fatalf("Makespan = %v, want %v", got, want)
	}
}

func TestMakespanPerfectSplit(t *testing.T) {
	cfg := testConfig(2, 1)
	tasks := []Cost{{CPUOps: 3e6}, {CPUOps: 2e6}, {CPUOps: 1e6}}
	// LPT: 3s -> core0, 2s -> core1, 1s -> core1. Makespan 3s.
	if got := Makespan(cfg, tasks); got != 3*time.Second {
		t.Fatalf("Makespan = %v, want 3s", got)
	}
}

func TestMakespanEmptyStage(t *testing.T) {
	cfg := testConfig(4, 4)
	cfg.StageOverhead = 7 * time.Millisecond
	if got := Makespan(cfg, nil); got != 7*time.Millisecond {
		t.Fatalf("empty stage makespan = %v", got)
	}
}

func TestMakespanInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid config")
		}
	}()
	Makespan(cluster.Config{}, []Cost{{CPUOps: 1}})
}

// Property: doubling the node count never increases the makespan, and the
// makespan never drops below the duration of the largest single task.
func TestMakespanMonotoneProperty(t *testing.T) {
	f := func(raw []uint32, nodes8 uint8) bool {
		nodes := int(nodes8%6) + 1
		if len(raw) > 64 {
			raw = raw[:64]
		}
		tasks := make([]Cost, len(raw))
		for i, v := range raw {
			tasks[i] = Cost{CPUOps: float64(v % 1e6), DiskRead: int64(v % 1e4)}
		}
		small := testConfig(nodes, 2)
		big := testConfig(2*nodes, 2)
		msSmall := Makespan(small, tasks)
		msBig := Makespan(big, tasks)
		if msBig > msSmall {
			return false
		}
		var largest time.Duration
		for _, c := range tasks {
			if d := TaskTime(small, c); d > largest {
				largest = d
			}
		}
		return msSmall >= largest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: makespan is at least total work divided by core count (the
// theoretical lower bound for any schedule).
func TestMakespanLowerBoundProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		tasks := make([]Cost, len(raw))
		var totalOps float64
		for i, v := range raw {
			tasks[i] = Cost{CPUOps: float64(v)}
			totalOps += float64(v)
		}
		cfg := testConfig(2, 2)
		bound := time.Duration(totalOps / cfg.CPUOpsPerSec / 4 * float64(time.Second))
		return Makespan(cfg, tasks) >= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanDeterministic(t *testing.T) {
	cfg := testConfig(3, 2)
	tasks := make([]Cost, 50)
	for i := range tasks {
		tasks[i] = Cost{CPUOps: float64((i*7919)%1000) * 1e3, Net: int64(i * 100)}
	}
	first := Makespan(cfg, tasks)
	for i := 0; i < 5; i++ {
		if got := Makespan(cfg, tasks); got != first {
			t.Fatalf("run %d: makespan %v != %v", i, got, first)
		}
	}
}

func TestRunStageAggregates(t *testing.T) {
	cfg := testConfig(2, 2)
	tasks := []Cost{{CPUOps: 5}, {CPUOps: 7, Net: 100}}
	rep := RunStage(cfg, "count", tasks)
	if rep.Name != "count" || rep.Tasks != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Total.CPUOps != 12 || rep.Total.Net != 100 {
		t.Fatalf("total = %+v", rep.Total)
	}
	if rep.Makespan <= 0 {
		t.Fatalf("makespan = %v", rep.Makespan)
	}
}

func TestJobReportDuration(t *testing.T) {
	j := JobReport{
		Name:     "job",
		Overhead: time.Second,
		Stages: []StageReport{
			{Name: "map", Makespan: 2 * time.Second, Total: Cost{CPUOps: 1}},
			{Name: "reduce", Makespan: 3 * time.Second, Total: Cost{CPUOps: 2}},
		},
	}
	if got := j.Duration(); got != 6*time.Second {
		t.Fatalf("Duration = %v", got)
	}
	if got := j.TotalCost(); got.CPUOps != 3 {
		t.Fatalf("TotalCost = %+v", got)
	}
}
