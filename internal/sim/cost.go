// Package sim provides the deterministic performance model used by the
// execution engines: metered task costs, a ledger for accumulating them from
// concurrent workers, and a list scheduler that converts the costs of a
// stage's tasks into a virtual makespan for a configured cluster.
//
// The design deliberately separates *results* from *time*. The RDD and
// MapReduce engines execute real Go code on real goroutines to compute exact
// answers; while doing so they count the work performed (CPU operations,
// bytes moved). This package turns those counts into reproducible virtual
// wall-clock durations so that experiments modelled on a 12-node cluster run
// identically on any development machine.
package sim

import (
	"fmt"
	"sync"
	"time"
)

// Cost records the resource demand of one task. CPUOps is an abstract unit
// of compute (engines count, e.g., one op per item touched or candidate
// checked); the byte fields are metered I/O volumes.
type Cost struct {
	CPUOps    float64 `json:"cpu_ops"`    // abstract compute operations
	DiskRead  int64   `json:"disk_read"`  // bytes read from node-local or distributed disk
	DiskWrite int64   `json:"disk_write"` // bytes written to node-local or distributed disk
	Net       int64   `json:"net"`        // bytes transferred over the cluster network
}

// Add returns the component-wise sum of c and d.
func (c Cost) Add(d Cost) Cost {
	return Cost{
		CPUOps:    c.CPUOps + d.CPUOps,
		DiskRead:  c.DiskRead + d.DiskRead,
		DiskWrite: c.DiskWrite + d.DiskWrite,
		Net:       c.Net + d.Net,
	}
}

// Sub returns the component-wise difference c - d, used to delta two
// counter or cost snapshots.
func (c Cost) Sub(d Cost) Cost {
	return Cost{
		CPUOps:    c.CPUOps - d.CPUOps,
		DiskRead:  c.DiskRead - d.DiskRead,
		DiskWrite: c.DiskWrite - d.DiskWrite,
		Net:       c.Net - d.Net,
	}
}

// IsZero reports whether the cost records no resource use at all.
func (c Cost) IsZero() bool {
	return c.CPUOps == 0 && c.DiskRead == 0 && c.DiskWrite == 0 && c.Net == 0
}

// Norm collapses the cost into a single cluster-independent magnitude (the
// component sum). It is not a time estimate — use TaskTime for that — but it
// orders tasks by how much data-dependent work they carry, which is what the
// skew analysis needs when no cluster config is at hand.
func (c Cost) Norm() float64 {
	return c.CPUOps + float64(c.DiskRead) + float64(c.DiskWrite) + float64(c.Net)
}

// String renders the cost compactly for logs and reports, with byte fields
// in human units.
func (c Cost) String() string {
	return fmt.Sprintf("cpu=%.0f dr=%s dw=%s net=%s",
		c.CPUOps, HumanBytes(c.DiskRead), HumanBytes(c.DiskWrite), HumanBytes(c.Net))
}

// HumanBytes renders a byte count in the largest fitting binary unit with
// one decimal (1536 -> "1.5KB"), keeping exact byte counts below 1 KB.
func HumanBytes(n int64) string {
	abs := n
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs < 1<<10:
		return fmt.Sprintf("%dB", n)
	case abs < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	case abs < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	}
}

// Ledger accumulates the cost of a single task. Worker goroutines each own
// one Ledger, so the methods are cheap; Ledger is nevertheless safe for
// concurrent use because substrate layers (e.g. the DFS) may be shared.
type Ledger struct {
	mu   sync.Mutex
	cost Cost
}

// AddCPU records n abstract compute operations.
func (l *Ledger) AddCPU(n float64) {
	l.mu.Lock()
	l.cost.CPUOps += n
	l.mu.Unlock()
}

// AddDiskRead records n bytes read from disk.
func (l *Ledger) AddDiskRead(n int64) {
	l.mu.Lock()
	l.cost.DiskRead += n
	l.mu.Unlock()
}

// AddDiskWrite records n bytes written to disk.
func (l *Ledger) AddDiskWrite(n int64) {
	l.mu.Lock()
	l.cost.DiskWrite += n
	l.mu.Unlock()
}

// AddNet records n bytes moved across the network.
func (l *Ledger) AddNet(n int64) {
	l.mu.Lock()
	l.cost.Net += n
	l.mu.Unlock()
}

// Add merges an entire pre-computed cost into the ledger.
func (l *Ledger) Add(c Cost) {
	l.mu.Lock()
	l.cost = l.cost.Add(c)
	l.mu.Unlock()
}

// Total returns a snapshot of the accumulated cost.
func (l *Ledger) Total() Cost {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cost
}

// Reset clears the ledger and returns what it held.
func (l *Ledger) Reset() Cost {
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.cost
	l.cost = Cost{}
	return c
}

// StageReport summarises one executed stage: how many tasks ran, their
// summed cost, and the virtual makespan the scheduler computed for them.
type StageReport struct {
	Name     string
	Tasks    int
	Total    Cost
	Makespan time.Duration
}

// JobReport aggregates the stages of one logical job (one MapReduce job, or
// one RDD action) into a total virtual duration.
type JobReport struct {
	Name     string
	Stages   []StageReport
	Overhead time.Duration // startup / scheduling time outside any stage
}

// Duration returns the job's total virtual time: startup overhead plus the
// sum of stage makespans (stages within a job are sequential barriers, as in
// both Hadoop and Spark's synchronous stage model).
func (j *JobReport) Duration() time.Duration {
	d := j.Overhead
	for _, s := range j.Stages {
		d += s.Makespan
	}
	return d
}

// TotalCost returns the summed resource cost across all stages.
func (j *JobReport) TotalCost() Cost {
	var c Cost
	for _, s := range j.Stages {
		c = c.Add(s.Total)
	}
	return c
}
