package sim

import (
	"testing"
	"time"
)

func TestMakespanPlacedLocalitySatisfied(t *testing.T) {
	// With as many tasks as cores and balanced preferences, every task runs
	// locally and the makespan equals the unplaced one.
	cfg := testConfig(2, 2)
	tasks := make([]Placed, 4)
	plain := make([]Cost, 4)
	for i := range tasks {
		c := Cost{CPUOps: 1e6, DiskRead: 1000}
		tasks[i] = Placed{Cost: c, Pref: []int{i % 2}}
		plain[i] = c
	}
	if got, want := MakespanPlaced(cfg, tasks), Makespan(cfg, plain); got != want {
		t.Fatalf("local schedule %v != unplaced %v", got, want)
	}
}

func TestMakespanPlacedRemotePenalty(t *testing.T) {
	// All tasks prefer node 0 of a 2-node cluster; half must run remotely
	// and pay to pull their input over the network, so the placed makespan
	// exceeds the unplaced one.
	cfg := testConfig(2, 1)
	cfg.TaskLaunch = time.Millisecond
	tasks := make([]Placed, 8)
	plain := make([]Cost, 8)
	for i := range tasks {
		c := Cost{CPUOps: 1e6, DiskRead: 500e3}
		tasks[i] = Placed{Cost: c, Pref: []int{0}}
		plain[i] = c
	}
	placed := MakespanPlaced(cfg, tasks)
	unplaced := Makespan(cfg, plain)
	if placed <= unplaced {
		t.Fatalf("remote reads not penalised: placed %v <= unplaced %v", placed, unplaced)
	}
}

func TestMakespanPlacedNoPrefsMatchesMakespan(t *testing.T) {
	cfg := testConfig(3, 2)
	var tasks []Placed
	var plain []Cost
	for i := 0; i < 20; i++ {
		c := Cost{CPUOps: float64(i) * 1e5}
		tasks = append(tasks, Placed{Cost: c})
		plain = append(plain, c)
	}
	if got, want := MakespanPlaced(cfg, tasks), Makespan(cfg, plain); got != want {
		t.Fatalf("prefs-free placed schedule %v != plain %v", got, want)
	}
}

func TestMakespanPlacedEmptyAndDeterministic(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.StageOverhead = 5 * time.Millisecond
	if got := MakespanPlaced(cfg, nil); got != 5*time.Millisecond {
		t.Fatalf("empty stage = %v", got)
	}
	tasks := make([]Placed, 30)
	for i := range tasks {
		tasks[i] = Placed{Cost: Cost{CPUOps: float64((i * 131) % 7e5), DiskRead: int64(i)}, Pref: []int{i % 2}}
	}
	first := MakespanPlaced(cfg, tasks)
	for i := 0; i < 5; i++ {
		if got := MakespanPlaced(cfg, tasks); got != first {
			t.Fatalf("non-deterministic: %v vs %v", got, first)
		}
	}
}

func TestRunStagePlacedAggregates(t *testing.T) {
	cfg := testConfig(2, 2)
	rep := RunStagePlaced(cfg, "map", []Placed{
		{Cost: Cost{CPUOps: 5}}, {Cost: Cost{CPUOps: 7}, Pref: []int{1}},
	})
	if rep.Tasks != 2 || rep.Total.CPUOps != 12 || rep.Makespan <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}
