package sim

import (
	"fmt"
	"time"

	"yafim/internal/cluster"
)

// TaskTime converts one task's cost into a service duration on the given
// cluster. CPU work runs on a single core at the per-core rate. Disk and
// network traffic move at the per-node bandwidth divided by the node's core
// count: the model assumes every core of a node can be busy simultaneously,
// so each concurrently running task receives an equal bandwidth share. That
// pessimistic-but-fair share keeps the model deterministic and monotone:
// adding nodes adds aggregate bandwidth.
//
// TaskTime panics on a cluster config with non-positive rates or core
// counts: dividing by them would silently turn every downstream makespan
// into Inf/NaN, which is far harder to notice than a loud failure here.
func TaskTime(cfg cluster.Config, c Cost) time.Duration {
	if cfg.CoresPerNode <= 0 || cfg.CPUOpsPerSec <= 0 || cfg.DiskBWPerSec <= 0 || cfg.NetBWPerSec <= 0 {
		panic(fmt.Sprintf("sim: TaskTime on unusable cluster config: %v", cfg.Validate()))
	}
	secs := c.CPUOps / cfg.CPUOpsPerSec
	share := float64(cfg.CoresPerNode)
	secs += float64(c.DiskRead+c.DiskWrite) / (cfg.DiskBWPerSec / share)
	secs += float64(c.Net) / (cfg.NetBWPerSec / share)
	return cfg.TaskLaunch + time.Duration(secs*float64(time.Second))
}

// Makespan schedules the stage's tasks onto the cluster's virtual cores
// using the classic LPT (longest processing time first) greedy rule and
// returns the resulting stage completion time, including the per-stage
// scheduling overhead. The schedule is deterministic: ties in both task
// ordering and core selection break on the lowest index. Tasks without
// locality preferences schedule identically under PlaceTasks, which is the
// single scheduling implementation.
func Makespan(cfg cluster.Config, tasks []Cost) time.Duration {
	_, makespan := PlaceTasks(cfg, asPlaced(tasks))
	return cfg.StageOverhead + makespan
}

// asPlaced wraps plain task costs as preference-free placed tasks.
func asPlaced(tasks []Cost) []Placed {
	placed := make([]Placed, len(tasks))
	for i, c := range tasks {
		placed[i] = Placed{Cost: c}
	}
	return placed
}

// RunStage builds a StageReport for a named stage from per-task costs.
func RunStage(cfg cluster.Config, name string, tasks []Cost) StageReport {
	var total Cost
	for _, c := range tasks {
		total = total.Add(c)
	}
	return StageReport{
		Name:     name,
		Tasks:    len(tasks),
		Total:    total,
		Makespan: Makespan(cfg, tasks),
	}
}
