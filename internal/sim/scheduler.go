package sim

import (
	"sort"
	"time"

	"yafim/internal/cluster"
)

// TaskTime converts one task's cost into a service duration on the given
// cluster. CPU work runs on a single core at the per-core rate. Disk and
// network traffic move at the per-node bandwidth divided by the node's core
// count: the model assumes every core of a node can be busy simultaneously,
// so each concurrently running task receives an equal bandwidth share. That
// pessimistic-but-fair share keeps the model deterministic and monotone:
// adding nodes adds aggregate bandwidth.
func TaskTime(cfg cluster.Config, c Cost) time.Duration {
	secs := c.CPUOps / cfg.CPUOpsPerSec
	share := float64(cfg.CoresPerNode)
	secs += float64(c.DiskRead+c.DiskWrite) / (cfg.DiskBWPerSec / share)
	secs += float64(c.Net) / (cfg.NetBWPerSec / share)
	return cfg.TaskLaunch + time.Duration(secs*float64(time.Second))
}

// Makespan schedules the stage's tasks onto the cluster's virtual cores
// using the classic LPT (longest processing time first) greedy rule and
// returns the resulting stage completion time, including the per-stage
// scheduling overhead. The schedule is deterministic: ties in both task
// ordering and core selection break on the lowest index.
func Makespan(cfg cluster.Config, tasks []Cost) time.Duration {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if len(tasks) == 0 {
		return cfg.StageOverhead
	}
	durs := make([]time.Duration, len(tasks))
	for i, c := range tasks {
		durs[i] = TaskTime(cfg, c)
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return durs[order[a]] > durs[order[b]] })

	cores := make([]time.Duration, cfg.TotalCores())
	for _, ti := range order {
		// Find the least-loaded core; with at most a few hundred cores a
		// linear scan beats heap bookkeeping and stays obviously correct.
		best := 0
		for ci := 1; ci < len(cores); ci++ {
			if cores[ci] < cores[best] {
				best = ci
			}
		}
		cores[best] += durs[ti]
	}
	var makespan time.Duration
	for _, load := range cores {
		if load > makespan {
			makespan = load
		}
	}
	return cfg.StageOverhead + makespan
}

// RunStage builds a StageReport for a named stage from per-task costs.
func RunStage(cfg cluster.Config, name string, tasks []Cost) StageReport {
	var total Cost
	for _, c := range tasks {
		total = total.Add(c)
	}
	return StageReport{
		Name:     name,
		Tasks:    len(tasks),
		Total:    total,
		Makespan: Makespan(cfg, tasks),
	}
}
