package sim

import (
	"sort"
	"time"

	"yafim/internal/cluster"
)

// StageOpts tunes one stage's schedule for fault and straggler handling.
// The zero value schedules exactly like PlaceTasks.
type StageOpts struct {
	// NodeFactor is an optional per-node service-time multiplier (>= 1);
	// tasks placed on a slowed node take factor times as long. Nil or a
	// factor of 1 means full speed. The scheduler places tasks without
	// knowing the factors — exactly like a real cluster, where a degraded
	// node is only discovered by watching its tasks run long — so slowed
	// tasks are rescued by speculation, not avoided up front.
	NodeFactor []float64
	// Exclude marks nodes the scheduler must not place tasks on
	// (blacklisted or dead). If the mask would exclude every node it is
	// ignored rather than deadlocking the stage.
	Exclude []bool
	// Spec enables speculative execution of straggler tasks.
	Spec *SpecPolicy
}

// SpecPolicy is Spark/Hadoop-style task speculation: once a task has run
// Threshold times the stage's median task duration, a backup copy launches
// on the least-loaded core of a different node; whichever copy finishes
// first wins and the other is killed.
type SpecPolicy struct {
	Threshold float64 // multiple of the median task duration (<= 0 disables)
	MinTasks  int     // skip stages smaller than this
}

// SpecStats counts speculative activity in one stage's schedule.
type SpecStats struct {
	Launched int64 // backup copies launched
	Won      int64 // backups that beat the original attempt
}

// Add accumulates another stage's speculation counts.
func (s *SpecStats) Add(o SpecStats) {
	s.Launched += o.Launched
	s.Won += o.Won
}

// PlaceTasksOpts schedules tasks like PlaceTasks, additionally honouring the
// stage options: excluded nodes receive no tasks, slowed nodes stretch the
// tasks placed on them, and the speculation policy launches backup copies of
// stragglers after the main placement. Returns the schedule, the speculation
// counts, and the schedule length (excluding the per-stage overhead).
func PlaceTasksOpts(cfg cluster.Config, tasks []Placed, opts StageOpts) ([]TaskPlacement, SpecStats, time.Duration) {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	var stats SpecStats
	if len(tasks) == 0 {
		return nil, stats, 0
	}

	exclude := opts.Exclude
	if allExcluded(cfg.Nodes, exclude) {
		exclude = nil
	}
	excluded := func(node int) bool {
		return exclude != nil && node < len(exclude) && exclude[node]
	}
	factor := func(node int) float64 {
		if node < len(opts.NodeFactor) && opts.NodeFactor[node] > 1 {
			return opts.NodeFactor[node]
		}
		return 1
	}

	// Base service times: the task's cost plus one extra launch per prior
	// failed attempt (re-spawning the task's container/JVM).
	durs := make([]time.Duration, len(tasks))
	for i, t := range tasks {
		durs[i] = TaskTime(cfg, t.Cost) + time.Duration(t.Relaunches)*cfg.TaskLaunch
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return durs[order[a]] > durs[order[b]] })

	placements := make([]TaskPlacement, len(tasks))
	cores := make([]time.Duration, cfg.TotalCores())
	nodeOf := func(core int) int { return core / cfg.CoresPerNode }
	for _, ti := range order {
		best := -1
		for ci := 0; ci < len(cores); ci++ {
			if excluded(nodeOf(ci)) {
				continue
			}
			if best < 0 || cores[ci] < cores[best] {
				best = ci
			}
		}
		chosen := best
		remote := false
		if prefs := tasks[ti].Pref; len(prefs) > 0 {
			// Least-loaded core on a preferred node.
			bestLocal := -1
			for ci := 0; ci < len(cores); ci++ {
				if excluded(nodeOf(ci)) || !contains(prefs, nodeOf(ci)) {
					continue
				}
				if bestLocal < 0 || cores[ci] < cores[bestLocal] {
					bestLocal = ci
				}
			}
			switch {
			case bestLocal >= 0 && cores[bestLocal] <= cores[best]+localityWait(cfg):
				chosen = bestLocal
			default:
				remote = !contains(prefs, nodeOf(best))
			}
		}
		d := time.Duration(float64(durs[ti]) * factor(nodeOf(chosen)))
		if remote {
			d += remoteReadPenalty(cfg, tasks[ti].Cost)
		}
		placements[ti] = TaskPlacement{
			Task:   ti,
			Node:   nodeOf(chosen),
			Core:   chosen % cfg.CoresPerNode,
			Start:  cores[chosen],
			End:    cores[chosen] + d,
			Remote: remote,
		}
		cores[chosen] += d
	}

	if sp := opts.Spec; sp != nil && sp.Threshold > 0 && len(tasks) >= sp.MinTasks && len(tasks) >= 2 {
		stats = speculate(cfg, tasks, durs, placements, cores, *sp, excluded, factor)
	}

	var makespan time.Duration
	for _, load := range cores {
		if load > makespan {
			makespan = load
		}
	}
	return placements, stats, makespan
}

// speculate launches backup copies of straggler tasks onto other nodes,
// in task-index order for determinism, updating placements and core loads
// in place. A backup is detected at start + threshold x median, runs on the
// least-loaded core of a different non-excluded node, and wins only if it
// finishes strictly before the original attempt; a losing backup still
// occupies its core until the original finishes (then it is killed).
func speculate(cfg cluster.Config, tasks []Placed, durs []time.Duration,
	placements []TaskPlacement, cores []time.Duration, sp SpecPolicy,
	excluded func(int) bool, factor func(int) float64) SpecStats {

	var stats SpecStats
	sorted := make([]time.Duration, len(placements))
	for i, p := range placements {
		sorted[i] = p.End - p.Start
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return stats
	}
	cutoff := time.Duration(float64(median) * sp.Threshold)
	nodeOf := func(core int) int { return core / cfg.CoresPerNode }

	for ti := range tasks {
		p := &placements[ti]
		if p.End-p.Start <= cutoff {
			continue
		}
		detect := p.Start + cutoff
		backup := -1
		for ci := 0; ci < len(cores); ci++ {
			n := nodeOf(ci)
			if n == p.Node || excluded(n) {
				continue
			}
			if backup < 0 || cores[ci] < cores[backup] {
				backup = ci
			}
		}
		if backup < 0 {
			continue // single-node cluster or everything else excluded
		}
		bStart := cores[backup]
		if bStart < detect {
			bStart = detect
		}
		if bStart >= p.End {
			continue // the original finishes before a backup could even start
		}
		bNode := nodeOf(backup)
		bd := time.Duration(float64(durs[ti]) * factor(bNode))
		bRemote := len(tasks[ti].Pref) > 0 && !contains(tasks[ti].Pref, bNode)
		if bRemote {
			bd += remoteReadPenalty(cfg, tasks[ti].Cost)
		}
		bEnd := bStart + bd
		stats.Launched++
		if bEnd < p.End {
			stats.Won++
			// The original attempt is killed when the backup finishes. Its
			// core is only reclaimable if this task was the last thing
			// scheduled there; mid-queue slots stay as scheduled.
			origCore := p.Node*cfg.CoresPerNode + p.Core
			if cores[origCore] == p.End {
				cores[origCore] = bEnd
			}
			p.Node = bNode
			p.Core = backup % cfg.CoresPerNode
			p.Start = bStart
			p.End = bEnd
			p.Remote = bRemote
			cores[backup] = bEnd
		} else {
			// The backup loses and is killed when the original finishes.
			cores[backup] = p.End
		}
	}
	return stats
}

// allExcluded reports whether the mask excludes every node of the cluster.
func allExcluded(nodes int, exclude []bool) bool {
	if exclude == nil {
		return false
	}
	for n := 0; n < nodes; n++ {
		if n >= len(exclude) || !exclude[n] {
			return false
		}
	}
	return true
}

// RunStageResilient builds a StageReport like RunStageScheduled while
// honouring stage options (exclusions, straggler factors, speculation), and
// additionally returns the stage's speculation counts.
func RunStageResilient(cfg cluster.Config, name string, tasks []Placed, opts StageOpts) (StageReport, []TaskPlacement, SpecStats) {
	var total Cost
	for _, t := range tasks {
		total = total.Add(t.Cost)
	}
	placements, stats, makespan := PlaceTasksOpts(cfg, tasks, opts)
	return StageReport{
		Name:     name,
		Tasks:    len(tasks),
		Total:    total,
		Makespan: cfg.StageOverhead + makespan,
	}, placements, stats
}
