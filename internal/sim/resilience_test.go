package sim

import (
	"testing"
	"time"

	"yafim/internal/cluster"
)

func testCfg() cluster.Config {
	return cluster.Config{
		Name:         "test-4n",
		Nodes:        4,
		CoresPerNode: 2,
		CPUOpsPerSec: 1e3,
		DiskBWPerSec: 1e6,
		NetBWPerSec:  1e6,
		TaskLaunch:   time.Millisecond,
	}
}

func uniformTasks(n int, ops float64) []Placed {
	tasks := make([]Placed, n)
	for i := range tasks {
		tasks[i] = Placed{Cost: Cost{CPUOps: ops}}
	}
	return tasks
}

func TestZeroOptsMatchesPlaceTasks(t *testing.T) {
	cfg := testCfg()
	tasks := []Placed{
		{Cost: Cost{CPUOps: 100}, Pref: []int{0}},
		{Cost: Cost{CPUOps: 300}},
		{Cost: Cost{CPUOps: 200, DiskRead: 5000}, Pref: []int{1, 2}},
		{Cost: Cost{CPUOps: 50}},
	}
	p1, m1 := PlaceTasks(cfg, tasks)
	p2, stats, m2 := PlaceTasksOpts(cfg, tasks, StageOpts{})
	if m1 != m2 {
		t.Fatalf("makespan differs: %v vs %v", m1, m2)
	}
	if stats != (SpecStats{}) {
		t.Fatalf("zero opts produced speculation stats: %+v", stats)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("placement %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

func TestExcludedNodesReceiveNoTasks(t *testing.T) {
	cfg := testCfg()
	tasks := uniformTasks(16, 100)
	exclude := []bool{false, true, false, true}
	placements, _, _ := PlaceTasksOpts(cfg, tasks, StageOpts{Exclude: exclude})
	for _, p := range placements {
		if exclude[p.Node] {
			t.Fatalf("task %d placed on excluded node %d", p.Task, p.Node)
		}
	}
}

func TestExclusionIgnoredWhenTotal(t *testing.T) {
	cfg := testCfg()
	tasks := uniformTasks(4, 100)
	placements, _, _ := PlaceTasksOpts(cfg, tasks, StageOpts{
		Exclude: []bool{true, true, true, true},
	})
	if len(placements) != 4 {
		t.Fatalf("stage with all nodes excluded did not schedule: %d placements", len(placements))
	}
}

func TestStragglerStretchesItsTasks(t *testing.T) {
	cfg := testCfg()
	tasks := uniformTasks(8, 1000) // one per core
	factors := []float64{1, 1, 5, 1}
	placements, _, slowMakespan := PlaceTasksOpts(cfg, tasks, StageOpts{NodeFactor: factors})
	_, _, baseMakespan := PlaceTasksOpts(cfg, tasks, StageOpts{})
	if slowMakespan <= baseMakespan {
		t.Fatalf("straggler makespan %v not above baseline %v", slowMakespan, baseMakespan)
	}
	var onSlow, onFast time.Duration
	for _, p := range placements {
		if p.Node == 2 {
			onSlow = p.End - p.Start
		} else {
			onFast = p.End - p.Start
		}
	}
	if onSlow != 5*onFast {
		t.Fatalf("slow-node task %v, fast-node task %v: want exactly 5x", onSlow, onFast)
	}
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	cfg := testCfg()
	tasks := uniformTasks(8, 1000)
	opts := StageOpts{
		NodeFactor: []float64{1, 1, 10, 1},
		Spec:       &SpecPolicy{Threshold: 1.5, MinTasks: 4},
	}
	placements, stats, specMakespan := PlaceTasksOpts(cfg, tasks, opts)
	if stats.Launched == 0 || stats.Won == 0 {
		t.Fatalf("no speculative wins against a 10x straggler: %+v", stats)
	}
	noSpec := opts
	noSpec.Spec = nil
	_, _, plainMakespan := PlaceTasksOpts(cfg, tasks, noSpec)
	if specMakespan >= plainMakespan {
		t.Fatalf("speculation did not shorten the stage: %v vs %v", specMakespan, plainMakespan)
	}
	for _, p := range placements {
		if p.Node == 2 {
			t.Fatalf("task %d still finishing on the straggler node", p.Task)
		}
	}
}

func TestSpeculationSkipsSmallStages(t *testing.T) {
	cfg := testCfg()
	tasks := uniformTasks(2, 1000)
	_, stats, _ := PlaceTasksOpts(cfg, tasks, StageOpts{
		NodeFactor: []float64{10, 1, 1, 1},
		Spec:       &SpecPolicy{Threshold: 1.5, MinTasks: 4},
	})
	if stats.Launched != 0 {
		t.Fatalf("speculated in a stage below MinTasks: %+v", stats)
	}
}

func TestSpeculationDeterministic(t *testing.T) {
	cfg := testCfg()
	tasks := uniformTasks(12, 700)
	opts := StageOpts{
		NodeFactor: []float64{1, 6, 1, 1},
		Spec:       &SpecPolicy{Threshold: 1.5, MinTasks: 4},
	}
	p1, s1, m1 := PlaceTasksOpts(cfg, tasks, opts)
	p2, s2, m2 := PlaceTasksOpts(cfg, tasks, opts)
	if m1 != m2 || s1 != s2 {
		t.Fatalf("schedule not deterministic: %v/%v vs %v/%v", m1, s1, m2, s2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("placement %d differs across identical runs", i)
		}
	}
}

func TestRelaunchesChargeTaskLaunch(t *testing.T) {
	cfg := testCfg()
	base := TaskTime(cfg, Cost{CPUOps: 100})
	placements, _, _ := PlaceTasksOpts(cfg, []Placed{
		{Cost: Cost{CPUOps: 100}, Relaunches: 3},
	}, StageOpts{})
	got := placements[0].End - placements[0].Start
	want := base + 3*cfg.TaskLaunch
	if got != want {
		t.Fatalf("relaunched task duration %v, want %v", got, want)
	}
}

func TestTaskTimePanicsOnBadConfig(t *testing.T) {
	bad := testCfg()
	bad.CPUOpsPerSec = 0
	defer func() {
		if recover() == nil {
			t.Fatal("TaskTime accepted a zero CPUOpsPerSec config")
		}
	}()
	TaskTime(bad, Cost{CPUOps: 1})
}

func TestTaskTimePanicsOnNegativeBandwidth(t *testing.T) {
	bad := testCfg()
	bad.NetBWPerSec = -1
	defer func() {
		if recover() == nil {
			t.Fatal("TaskTime accepted a negative NetBWPerSec config")
		}
	}()
	TaskTime(bad, Cost{Net: 1})
}

func TestRunStageResilientReportsTotals(t *testing.T) {
	cfg := testCfg()
	tasks := uniformTasks(8, 500)
	rep, placements, _ := RunStageResilient(cfg, "s", tasks, StageOpts{})
	if rep.Tasks != 8 || len(placements) != 8 {
		t.Fatalf("report tasks=%d placements=%d, want 8", rep.Tasks, len(placements))
	}
	if rep.Total.CPUOps != 4000 {
		t.Fatalf("total CPU ops %v, want 4000", rep.Total.CPUOps)
	}
	plain, plainPl := RunStageScheduled(cfg, "s", tasks)
	if rep.Makespan != plain.Makespan || len(plainPl) != len(placements) {
		t.Fatalf("zero-opts resilient stage diverges from RunStageScheduled")
	}
}
