package sim

import (
	"testing"
	"time"

	"yafim/internal/cluster"
)

func placedTasks(n int) []Placed {
	tasks := make([]Placed, n)
	for i := range tasks {
		tasks[i] = Placed{Cost: Cost{CPUOps: float64(1000 * (i + 1))}}
	}
	return tasks
}

// TestPlaceTasksScheduleConsistent checks the schedule the telemetry layer
// records: placements are indexed like the tasks, intervals never overlap on
// a core, and the returned makespan is exactly the latest task end.
func TestPlaceTasksScheduleConsistent(t *testing.T) {
	cfg := cluster.Local()
	tasks := placedTasks(17)
	placements, makespan := PlaceTasks(cfg, tasks)
	if len(placements) != len(tasks) {
		t.Fatalf("placements = %d, want %d", len(placements), len(tasks))
	}
	var latest time.Duration
	type core struct{ node, core int }
	byCore := map[core][]TaskPlacement{}
	for i, pl := range placements {
		if pl.Task != i {
			t.Fatalf("placements[%d].Task = %d", i, pl.Task)
		}
		if pl.Start < 0 || pl.End < pl.Start {
			t.Fatalf("invalid interval: %+v", pl)
		}
		if pl.Node < 0 || pl.Node >= cfg.Nodes || pl.Core < 0 || pl.Core >= cfg.CoresPerNode {
			t.Fatalf("placement off the cluster: %+v", pl)
		}
		if pl.End > latest {
			latest = pl.End
		}
		byCore[core{pl.Node, pl.Core}] = append(byCore[core{pl.Node, pl.Core}], pl)
	}
	if latest != makespan {
		t.Fatalf("makespan = %v, latest task end = %v", makespan, latest)
	}
	for c, pls := range byCore {
		for _, a := range pls {
			for _, b := range pls {
				if a.Task == b.Task {
					continue
				}
				if a.Start < b.End && b.Start < a.End {
					t.Fatalf("core %+v runs overlapping tasks %+v and %+v", c, a, b)
				}
			}
		}
	}

	// The same schedule drives both the makespan and the report paths.
	if got := MakespanPlaced(cfg, tasks); got != cfg.StageOverhead+makespan {
		t.Fatalf("MakespanPlaced = %v, want %v", got, cfg.StageOverhead+makespan)
	}
	rep, pls2 := RunStageScheduled(cfg, "s", tasks)
	if rep.Makespan != cfg.StageOverhead+makespan || rep.Tasks != len(tasks) {
		t.Fatalf("report = %+v", rep)
	}
	for i := range placements {
		if placements[i] != pls2[i] {
			t.Fatalf("schedule differs between PlaceTasks and RunStageScheduled at %d", i)
		}
	}
}

func TestPlaceTasksDeterministic(t *testing.T) {
	cfg := cluster.Local()
	a, ma := PlaceTasks(cfg, placedTasks(23))
	b, mb := PlaceTasks(cfg, placedTasks(23))
	if ma != mb {
		t.Fatalf("makespans differ: %v vs %v", ma, mb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
