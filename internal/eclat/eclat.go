// Package eclat implements Zaki's Eclat algorithm: frequent itemset mining
// over a vertical database layout, where each item maps to the sorted list
// of transaction ids containing it and supports are computed by tidlist
// intersection during a depth-first search of the prefix tree.
//
// Eclat serves two roles here: a related-work baseline (the paper discusses
// Dist-Eclat/BigFIM) and an independent correctness oracle for the Apriori
// implementations — a structurally different algorithm agreeing on every
// count is strong evidence both are right.
package eclat

import (
	"fmt"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

// tidlist is a sorted list of transaction indices.
type tidlist []int32

// intersect returns the ordered intersection of two tidlists.
func intersect(a, b tidlist) tidlist {
	out := make(tidlist, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Mine runs Eclat over db at the given relative minimum support, returning
// results in the same shape as the sequential Apriori miner.
func Mine(db *itemset.DB, minSupport float64) (*apriori.Result, error) {
	if db.Len() == 0 {
		return nil, fmt.Errorf("eclat: empty database %q", db.Name)
	}
	minCount := db.MinSupportCount(minSupport)

	// Build the vertical layout, keeping only frequent items.
	vertical := make([]tidlist, db.NumItems())
	for ti, tr := range db.Transactions {
		for _, it := range tr.Items {
			vertical[it] = append(vertical[it], int32(ti))
		}
	}
	type cell struct {
		item itemset.Item
		tids tidlist
	}
	var frontier []cell
	for it, tids := range vertical {
		if len(tids) >= minCount {
			frontier = append(frontier, cell{itemset.Item(it), tids})
		}
	}

	byLevel := map[int][]apriori.SetCount{}
	var dfs func(prefix itemset.Itemset, ext []cell)
	dfs = func(prefix itemset.Itemset, ext []cell) {
		for i, c := range ext {
			set := prefix.Extend(c.item)
			byLevel[set.Len()] = append(byLevel[set.Len()],
				apriori.SetCount{Set: set, Count: len(c.tids)})
			var next []cell
			for _, d := range ext[i+1:] {
				shared := intersect(c.tids, d.tids)
				if len(shared) >= minCount {
					next = append(next, cell{d.item, shared})
				}
			}
			if len(next) > 0 {
				dfs(set, next)
			}
		}
	}
	dfs(nil, frontier)

	res := &apriori.Result{MinSupport: minCount}
	for k := 1; ; k++ {
		sets, ok := byLevel[k]
		if !ok {
			break
		}
		res.Levels = append(res.Levels, apriori.NewLevel(k, sets))
	}
	return res, nil
}
