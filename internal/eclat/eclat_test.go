package eclat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"yafim/internal/apriori"
	"yafim/internal/itemset"
)

func classicDB() *itemset.DB {
	return itemset.NewDB("classic", [][]itemset.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b, want tidlist
	}{
		{tidlist{1, 2, 3}, tidlist{2, 3, 4}, tidlist{2, 3}},
		{tidlist{}, tidlist{1}, tidlist{}},
		{tidlist{1, 5, 9}, tidlist{2, 6}, tidlist{}},
		{tidlist{1, 2}, tidlist{1, 2}, tidlist{1, 2}},
	}
	for _, c := range cases {
		got := intersect(c.a, c.b)
		if len(got) != len(c.want) {
			t.Fatalf("intersect(%v,%v) = %v", c.a, c.b, got)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Fatalf("intersect(%v,%v) = %v", c.a, c.b, got)
			}
		}
	}
}

func TestMineMatchesApriori(t *testing.T) {
	want, err := apriori.Mine(classicDB(), 2.0/9.0, apriori.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mine(classicDB(), 2.0/9.0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("eclat disagrees with apriori:\n got %v\nwant %v", got.All(), want.All())
	}
}

func TestMineEmptyDB(t *testing.T) {
	if _, err := Mine(itemset.NewDB("e", nil), 0.5); err == nil {
		t.Fatal("empty DB accepted")
	}
}

func TestMineNothingFrequent(t *testing.T) {
	db := itemset.NewDB("sparse", [][]itemset.Item{{1}, {2}, {3}})
	res, err := Mine(db, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != 0 {
		t.Fatalf("frequent = %d", res.NumFrequent())
	}
}

// Property: Eclat agrees exactly with sequential Apriori on random
// databases across support thresholds.
func TestMineAgreesWithAprioriProperty(t *testing.T) {
	f := func(seed int64, sup8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sup := 0.1 + float64(sup8%8)/10.0
		rows := make([][]itemset.Item, rng.Intn(25)+5)
		for i := range rows {
			n := rng.Intn(6) + 1
			for j := 0; j < n; j++ {
				rows[i] = append(rows[i], itemset.Item(rng.Intn(9)))
			}
		}
		db := itemset.NewDB("rand", rows)
		want, err := apriori.Mine(db, sup, apriori.Options{})
		if err != nil {
			return false
		}
		got, err := Mine(db, sup)
		if err != nil {
			return false
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
