package eclat

import (
	"testing"

	"yafim/internal/datagen"
)

func BenchmarkMine(b *testing.B) {
	db, err := datagen.MushroomLike(0.25, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(db, 0.35); err != nil {
			b.Fatal(err)
		}
	}
}
