package exec

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"time"
)

// Backoff computes capped exponential retry delays with deterministic,
// seed-driven jitter. It is the one retry-arithmetic helper shared across
// the repository: node-blacklist windows (chaos.NodeHealth), the distributed
// workers' map-output fetch retries, worker<->master RPC retries and real
// input-file read retries all derive their delays from it, instead of each
// site growing its own shift-and-cap arithmetic.
//
// Delay(attempt) for attempt n is Base * Factor^n, capped at Cap, then
// jittered downward by up to Jitter of itself. The jitter is a pure FNV hash
// of (Seed, attempt) — like every other randomized decision in this
// repository it depends only on declared identity, never on wall-clock or
// goroutine scheduling, so two runs with the same seed wait exactly the same
// virtual (or real) durations and stay byte-identical.
type Backoff struct {
	// Base is the delay before the first retry (attempt 0). A non-positive
	// Base yields zero delays.
	Base time.Duration
	// Cap bounds the exponential growth. Zero means no cap beyond the
	// overflow guard (delays never overflow time.Duration).
	Cap time.Duration
	// Factor is the per-attempt multiplier (default 2).
	Factor float64
	// Jitter in [0, 1] shrinks each delay by up to that fraction,
	// deterministically from Seed: delay * (1 - Jitter*u) with u in [0, 1).
	// Zero disables jitter.
	Jitter float64
	// Seed drives the jitter hash.
	Seed int64
}

// maxDoublings bounds the exponent so the shift arithmetic cannot overflow
// time.Duration even for multi-second bases (2^30 * 30s ~ 1000 years).
const maxDoublings = 30

// Delay returns the backoff delay before retry number attempt (0-based).
// Negative attempts are treated as 0.
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	if attempt < 0 {
		attempt = 0
	}
	if attempt > maxDoublings {
		attempt = maxDoublings
	}
	var d float64
	if factor := b.Factor; factor > 0 && factor != 2 {
		d = float64(b.Base)
		for i := 0; i < attempt; i++ {
			d *= factor
			if (b.Cap > 0 && d >= float64(b.Cap)) || d >= float64(1<<62) {
				break
			}
		}
	} else {
		// The default doubling factor runs on integer shifts, so delays are
		// exact: a blacklist window of Base<<n stays bit-identical to the
		// shift arithmetic it replaced.
		n := b.Base
		for i := 0; i < attempt; i++ {
			n <<= 1
			if (b.Cap > 0 && n >= b.Cap) || n >= 1<<62 || n <= 0 {
				break
			}
		}
		if n <= 0 { // overflowed past the guard
			n = 1 << 62
		}
		d = float64(n)
	}
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if d >= float64(1<<62) {
		d = float64(1 << 62)
	}
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		d *= 1 - j*hashUnit(b.Seed, attempt)
	}
	return time.Duration(d)
}

// Sleep waits for Delay(attempt) or until the context is done, whichever
// comes first, returning the sentinel-wrapped context error on early wakeup.
// A zero delay returns immediately (after a cancellation check).
func (b Backoff) Sleep(ctx context.Context, attempt int) error {
	if err := ContextErr(ctx); err != nil {
		return err
	}
	d := b.Delay(attempt)
	if d <= 0 {
		return nil
	}
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ContextErr(ctx)
	}
}

// Retry runs op up to retries+1 times, sleeping the backoff delay before
// each retry, and returns nil on the first success. Cancellation (of ctx,
// observed while sleeping) aborts immediately with the sentinel-wrapped
// context error; otherwise the last failure is returned. It is the one
// retry loop shared by the distributed workers' RPC, cache and map-output
// fetch paths, so a wall-clock budget can be layered on top with a single
// context deadline instead of per-site timeout arithmetic.
func Retry(ctx context.Context, b Backoff, retries int, op func() error) error {
	var last error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			if err := b.Sleep(ctx, attempt-1); err != nil {
				return err
			}
		}
		if err := op(); err != nil {
			last = err
			continue
		}
		return nil
	}
	return last
}

// hashUnit maps (seed, attempt) to a deterministic uniform value in [0, 1),
// the same FNV-1a construction the chaos plan uses for fault decisions.
func hashUnit(seed int64, attempt int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(attempt))
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}
