// Package exec is the execution-hardening layer shared by both engines (the
// RDD engine and the MapReduce engine): the error taxonomy for the *real*
// execution path — goroutine workers actually computing partitions — plus
// cooperative cancellation and panic isolation helpers.
//
// The taxonomy has three layers:
//
//   - Sentinel errors (ErrCanceled, ErrDeadlineExceeded) classify why a run
//     stopped early. They are wired for errors.Is and always wrap the
//     triggering context error, so errors.Is(err, context.Canceled) keeps
//     working too.
//   - TaskError identifies one failed task attempt: which engine, stage,
//     partition and attempt, and — when the failure was a panic in a user
//     closure — the recovered panic value and stack. Panics are isolated per
//     attempt and flow through the engines' ordinary retry machinery, so a
//     transient panic retries like an injected fault while a deterministic
//     one fails the job after the attempt limit.
//   - StageError wraps everything a stage could not recover from, annotated
//     with the stage's lineage so the failure names the dataset chain that
//     produced it, the way a Spark driver reports a failed stage with its
//     RDD dependency chain.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
)

// ErrCanceled reports that a run was stopped by context cancellation (an
// explicit cancel or a SIGINT/SIGTERM-driven one). Match with errors.Is.
var ErrCanceled = errors.New("exec: canceled")

// ErrDeadlineExceeded reports that a run outlived its deadline (a context
// deadline or the facade's wall-clock watchdog). Match with errors.Is.
var ErrDeadlineExceeded = errors.New("exec: deadline exceeded")

// ContextErr reports the cancellation state of ctx as a sentinel-wrapped
// error: nil while the context is live, otherwise ErrCanceled or
// ErrDeadlineExceeded wrapping ctx.Err() so both the package sentinels and
// the standard context errors match under errors.Is. A nil context is live.
func ContextErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	default:
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
}

// IsCancellation reports whether err classifies as a cooperative stop —
// cancellation or deadline expiry — rather than a genuine task failure.
// Engines use it to abort retry loops: retrying a canceled task only delays
// the shutdown the caller asked for.
func IsCancellation(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// CollapseCancellation returns one representative cancellation error from a
// stage's per-task error slice. When a stage is canceled, every still-pending
// task reports the same context error; joining them would print the identical
// message once per task. Returns nil if no error classifies as cancellation.
func CollapseCancellation(errs []error) error {
	for _, err := range errs {
		if err != nil && IsCancellation(err) {
			return err
		}
	}
	return nil
}

// TaskError is one failed task attempt: a panicking user closure converted
// into a value (PanicValue and Stack set), or an ordinary failure cause
// (Err set). It names the engine, stage, partition and attempt so a failure
// deep inside a worker goroutine is attributable without a debugger.
type TaskError struct {
	Engine  string // "rdd" or "mapreduce"
	Stage   string
	Part    int
	Attempt int

	// PanicValue and Stack are set when the attempt panicked; the goroutine
	// recovered and the panic became this error instead of killing the
	// process.
	PanicValue any
	Stack      []byte

	// Err is the ordinary failure cause when the attempt returned an error.
	Err error
}

func (e *TaskError) Error() string {
	if e.Panicked() {
		return fmt.Sprintf("%s: stage %q partition %d attempt %d panicked: %v",
			e.Engine, e.Stage, e.Part, e.Attempt, e.PanicValue)
	}
	return fmt.Sprintf("%s: stage %q partition %d attempt %d failed: %v",
		e.Engine, e.Stage, e.Part, e.Attempt, e.Err)
}

// Unwrap exposes the ordinary failure cause (nil for a panic).
func (e *TaskError) Unwrap() error { return e.Err }

// Panicked reports whether this attempt died by panic rather than by
// returning an error.
func (e *TaskError) Panicked() bool { return e.PanicValue != nil }

// Guard runs one task attempt with panic isolation: a panic in fn is
// recovered and returned as a *TaskError carrying the panic value and stack,
// so one crashing closure fails one attempt instead of the whole process.
// An ordinary error from fn is returned unchanged.
func Guard(engine, stage string, part, attempt int, fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &TaskError{
				Engine: engine, Stage: stage, Part: part, Attempt: attempt,
				PanicValue: v, Stack: debug.Stack(),
			}
		}
	}()
	return fn()
}

// StageError is a stage that could not complete: every permitted attempt of
// at least one task failed, or the run was canceled at this stage boundary.
// Lineage names the dataset dependency chain that fed the stage (nearest
// first), mirroring how a Spark driver reports a failed stage.
type StageError struct {
	Engine   string
	Stage    string
	Attempts int      // attempt limit in force (0 when the stage never ran)
	Lineage  []string // dependency chain, nearest ancestor first
	Err      error
}

func (e *StageError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: stage %q failed", e.Engine, e.Stage)
	if e.Attempts > 0 {
		fmt.Fprintf(&sb, " after %d attempts", e.Attempts)
	}
	if len(e.Lineage) > 0 {
		fmt.Fprintf(&sb, " (lineage %s)", strings.Join(e.Lineage, " <- "))
	}
	fmt.Fprintf(&sb, ": %v", e.Err)
	return sb.String()
}

func (e *StageError) Unwrap() error { return e.Err }
