package exec

import (
	"context"
	"testing"
	"time"
)

func TestBackoffDoubling(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond}
	if got := b.Delay(10); got != 50*time.Millisecond {
		t.Errorf("capped Delay(10) = %v, want 50ms", got)
	}
	// A huge attempt count must not overflow into a negative duration.
	huge := Backoff{Base: 30 * time.Second}
	if got := huge.Delay(1 << 20); got <= 0 {
		t.Errorf("overflow-guarded Delay = %v, want positive", got)
	}
}

func TestBackoffMatchesBlacklistShift(t *testing.T) {
	// The blacklist windows NodeHealth used to compute as Base<<over must be
	// bit-identical under the shared helper (exactness keeps chaos runs
	// byte-identical per seed).
	base := 30 * time.Second
	b := Backoff{Base: base}
	for over := 0; over <= 20; over++ {
		if got, want := b.Delay(over), base<<over; got != want {
			t.Fatalf("Delay(%d) = %v, want shift value %v", over, got, want)
		}
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	b := Backoff{Base: time.Second, Jitter: 0.5, Seed: 42}
	for attempt := 0; attempt < 8; attempt++ {
		d1, d2 := b.Delay(attempt), b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("jittered delay not deterministic: %v vs %v", d1, d2)
		}
		full := Backoff{Base: time.Second}.Delay(attempt)
		if d1 > full || d1 < full/2 {
			t.Fatalf("jittered Delay(%d) = %v outside [%v, %v]", attempt, d1, full/2, full)
		}
	}
	// Different seeds should (generically) jitter differently.
	other := Backoff{Base: time.Second, Jitter: 0.5, Seed: 43}
	same := true
	for attempt := 0; attempt < 8; attempt++ {
		if other.Delay(attempt) != b.Delay(attempt) {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical jitter on all attempts")
	}
}

func TestBackoffNonPositiveBase(t *testing.T) {
	if got := (Backoff{}).Delay(3); got != 0 {
		t.Errorf("zero-value Delay = %v, want 0", got)
	}
}

func TestBackoffCustomFactor(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Factor: 3}
	if got := b.Delay(2); got != 90*time.Millisecond {
		t.Errorf("Delay(2) with factor 3 = %v, want 90ms", got)
	}
}

func TestBackoffSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := Backoff{Base: time.Hour}
	if err := b.Sleep(ctx, 0); !IsCancellation(err) {
		t.Errorf("Sleep on canceled ctx = %v, want cancellation", err)
	}
	// Zero delay returns immediately even with a live context.
	if err := (Backoff{}).Sleep(context.Background(), 5); err != nil {
		t.Errorf("zero-delay Sleep = %v", err)
	}
}
