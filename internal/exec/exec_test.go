package exec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestContextErrLive(t *testing.T) {
	if err := ContextErr(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	if err := ContextErr(nil); err != nil {
		t.Fatalf("nil context: %v", err)
	}
}

func TestContextErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ContextErr(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled to match too, got %v", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("cancellation must not match ErrDeadlineExceeded: %v", err)
	}
	if !IsCancellation(err) {
		t.Fatalf("IsCancellation(%v) = false", err)
	}
}

func TestContextErrDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	err := ContextErr(ctx)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded to match too, got %v", err)
	}
	if !IsCancellation(err) {
		t.Fatalf("IsCancellation(%v) = false", err)
	}
}

func TestIsCancellationRejectsOrdinaryErrors(t *testing.T) {
	if IsCancellation(errors.New("boom")) {
		t.Fatal("ordinary error classified as cancellation")
	}
	if IsCancellation(nil) {
		t.Fatal("nil classified as cancellation")
	}
}

func TestGuardRecoversPanic(t *testing.T) {
	err := Guard("rdd", "matchC3", 7, 2, func() error { panic("candidate explosion") })
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("want *TaskError, got %v", err)
	}
	if !te.Panicked() {
		t.Fatal("Panicked() = false for a recovered panic")
	}
	if te.Engine != "rdd" || te.Stage != "matchC3" || te.Part != 7 || te.Attempt != 2 {
		t.Fatalf("wrong identity: %+v", te)
	}
	if te.PanicValue != "candidate explosion" {
		t.Fatalf("wrong panic value: %v", te.PanicValue)
	}
	if len(te.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	if !strings.Contains(te.Error(), "panicked") || !strings.Contains(te.Error(), "matchC3") {
		t.Fatalf("unhelpful message: %v", te)
	}
}

func TestGuardPassesThroughErrors(t *testing.T) {
	base := errors.New("disk on fire")
	if err := Guard("mapreduce", "map", 0, 1, func() error { return base }); err != base {
		t.Fatalf("want the original error, got %v", err)
	}
	if err := Guard("mapreduce", "map", 0, 1, func() error { return nil }); err != nil {
		t.Fatalf("want nil, got %v", err)
	}
}

func TestStageErrorMessageAndUnwrap(t *testing.T) {
	cause := errors.New("task 3 failed")
	err := &StageError{
		Engine: "rdd", Stage: "countC2", Attempts: 4,
		Lineage: []string{"countC2", "matchC2", "transactions"},
		Err:     cause,
	}
	msg := err.Error()
	for _, want := range []string{"rdd", "countC2", "4 attempts", "matchC2 <- transactions", "task 3 failed"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("message %q missing %q", msg, want)
		}
	}
	if !errors.Is(err, cause) {
		t.Fatal("StageError does not unwrap to its cause")
	}
}

func TestStageErrorCancellationChain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := &StageError{Engine: "rdd", Stage: "collect", Err: ContextErr(ctx)}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancellation does not survive StageError wrapping: %v", err)
	}
}
