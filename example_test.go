package yafim_test

import (
	"fmt"
	"log"

	"yafim"
)

// Example mines the textbook market-basket database with YAFIM on the
// simulated paper cluster and prints the frequent itemsets of maximal size.
func Example() {
	db := yafim.NewDB("baskets", [][]yafim.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
	trace, err := yafim.Mine(db, 2.0/9.0, yafim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frequent itemsets: %d\n", trace.Result.NumFrequent())
	for _, sc := range trace.Result.Frequent(trace.Result.MaxK()) {
		fmt.Printf("%v appears in %d baskets\n", sc.Set, sc.Count)
	}
	// Output:
	// frequent itemsets: 13
	// {1 2 3} appears in 2 baskets
	// {1 2 5} appears in 2 baskets
}

// ExampleGenerateRules derives association rules from a mining result.
func ExampleGenerateRules() {
	db := yafim.NewDB("baskets", [][]yafim.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
	trace, err := yafim.Mine(db, 2.0/9.0, yafim.Options{Engine: yafim.EngineSequential})
	if err != nil {
		log.Fatal(err)
	}
	rules, err := yafim.GenerateRules(trace.Result, 0.99, db.Len())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rules[:3] {
		fmt.Println(r)
	}
	// Output:
	// {1 5} => {2} (sup=2 conf=1.00 lift=1.29)
	// {2 5} => {1} (sup=2 conf=1.00 lift=1.50)
	// {4} => {2} (sup=2 conf=1.00 lift=1.29)
}

// ExampleResult_Maximal condenses a result to its maximal itemsets.
func ExampleResult_Maximal() {
	db := yafim.NewDB("baskets", [][]yafim.Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
	trace, err := yafim.Mine(db, 2.0/9.0, yafim.Options{Engine: yafim.EngineEclat})
	if err != nil {
		log.Fatal(err)
	}
	for _, sc := range trace.Result.Maximal() {
		fmt.Println(sc.Set)
	}
	// Output:
	// {2 4}
	// {1 2 3}
	// {1 2 5}
}
