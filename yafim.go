// Package yafim is a Go reproduction of "YAFIM: A Parallel Frequent
// Itemset Mining Algorithm with Spark" (Qiu, Gu, Yuan, Huang — IEEE IPDPSW
// 2014): the YAFIM algorithm itself, the Spark-like RDD engine and
// Hadoop-like MapReduce engine it is evaluated against, sequential oracles
// (Apriori, Eclat, FP-Growth), association-rule generation, the paper's
// benchmark dataset generators, and a deterministic cluster performance
// model that reproduces the paper's figures on any machine.
//
// This package is the public facade over the internal subsystems. The
// typical flow is: obtain a DB (load a .dat file or use a generator), pick
// a Cluster, and call Mine with the engine of your choice:
//
//	db, _ := yafim.LoadFile("retail", "retail.dat")
//	trace, _ := yafim.Mine(db, 0.01, yafim.Options{})
//	rules, _ := yafim.GenerateRules(trace.Result, 0.8, db.Len())
//
// All mining engines return exactly the same frequent itemsets for the same
// input; they differ only in execution strategy and simulated cost.
package yafim

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"time"

	"yafim/internal/apriori"
	"yafim/internal/chaos"
	"yafim/internal/cluster"
	"yafim/internal/datagen"
	"yafim/internal/dataset"
	"yafim/internal/eclat"
	"yafim/internal/exec"
	"yafim/internal/experiments"
	"yafim/internal/fpgrowth"
	"yafim/internal/itemset"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
	"yafim/internal/rdd"
	"yafim/internal/rddeclat"
	"yafim/internal/rules"
	"yafim/internal/yafim"
)

// Core data types, re-exported from the itemset package.
type (
	// Item identifies a single item.
	Item = itemset.Item
	// Itemset is a sorted, duplicate-free set of items.
	Itemset = itemset.Itemset
	// DB is an immutable transactional database.
	DB = itemset.DB
	// Stats summarises a database (Table I style).
	Stats = itemset.Stats
)

// Mining result types, re-exported from the apriori package.
type (
	// Result holds every frequent itemset with exact support counts.
	Result = apriori.Result
	// SetCount pairs an itemset with its support count.
	SetCount = apriori.SetCount
	// Trace is a Result plus per-pass timing from a parallel engine.
	Trace = apriori.Trace
	// PassStat is the per-pass record inside a Trace.
	PassStat = apriori.PassStat
)

// Rule is an association rule with support, confidence and lift.
type Rule = rules.Rule

// Error types, re-exported from the exec package. Every failure returned by
// Mine/MineContext is inspectable with errors.Is/errors.As:
//
//   - ErrCanceled / ErrDeadlineExceeded match when the run was cut short by
//     its context or by Options.Deadline.
//   - *StageError names the engine and stage that failed, the retry budget
//     spent, and the RDD lineage that would be recomputed.
//   - *TaskError pinpoints one task attempt; if a user closure panicked, it
//     carries the recovered value and stack instead of crashing the process.
//   - *InputError (defined here) reports an invalid Mine argument.
type (
	// TaskError is a single task attempt's failure (possibly a recovered
	// panic) with engine, stage, partition and attempt attached.
	TaskError = exec.TaskError
	// StageError is a stage-level failure wrapping the per-task errors,
	// annotated with the lineage needed to recompute the stage.
	StageError = exec.StageError
)

// Cancellation sentinels, re-exported from the exec package.
var (
	// ErrCanceled matches (via errors.Is) any error caused by context
	// cancellation.
	ErrCanceled = exec.ErrCanceled
	// ErrDeadlineExceeded matches any error caused by a context deadline or
	// Options.Deadline expiring.
	ErrDeadlineExceeded = exec.ErrDeadlineExceeded
)

// IsCancellation reports whether err was caused by context cancellation or
// an expired deadline — i.e. it matches ErrCanceled or ErrDeadlineExceeded.
func IsCancellation(err error) bool { return exec.IsCancellation(err) }

// InputError reports an invalid argument to Mine or MineContext.
type InputError struct {
	// Field names the offending argument ("db", "minSupport", "MaxK", ...).
	Field string
	// Reason says what was wrong with it.
	Reason string
}

func (e *InputError) Error() string {
	return fmt.Sprintf("yafim: invalid %s: %s", e.Field, e.Reason)
}

// Telemetry types, re-exported from the obs package.
type (
	// Recorder collects spans and counters from an instrumented run; attach
	// one via Options.Recorder. A nil recorder disables telemetry.
	Recorder = obs.Recorder
	// Counters is a snapshot of an instrumented run's runtime counters.
	Counters = obs.Counters
	// StageStats summarises one stage's task-time distribution.
	StageStats = obs.StageStats
	// Diagnosis is the analyzed view of a recorded run: critical path,
	// per-stage skew, and straggler attribution.
	Diagnosis = obs.Diagnosis
)

// NewRecorder creates an empty telemetry recorder.
func NewRecorder() *Recorder { return obs.New() }

// Diagnose analyzes a recorded run: the critical path through the span tree
// (whose step durations sum exactly to the run's makespan), per-stage skew
// (max/median task time, Gini over partition sizes, hot partitions) and
// straggler attribution. cfg, when non-nil, should be the cluster the run
// executed on; it lets the analysis separate environment-slowed tasks
// (chaos stragglers) from genuinely heavy partitions by comparing scheduled
// durations against cost-predicted ones.
func Diagnose(rec *Recorder, cfg *Cluster) *Diagnosis {
	return obs.Analyze(rec, obs.AnalyzeOptions{Cluster: cfg})
}

// WriteDiagnosis renders a diagnosis for humans: critical-path contributors,
// skewed stages, hot partitions and attributed stragglers.
var WriteDiagnosis = obs.WriteDiagnosis

// WriteJournal exports a recorded run as a JSONL event journal: one line per
// job/stage boundary, task retry and shuffle lifecycle event, each stamped
// with its virtual timestamp. Identical runs journal identical bytes.
var WriteJournal = obs.WriteJournal

// WritePrometheus renders the recorder's metric surface (flat counters plus
// histogram/gauge families) in the Prometheus text exposition format.
var WritePrometheus = obs.WritePrometheus

// ObsHandler serves a recorder over HTTP: Prometheus text at /metrics, the
// diagnosis at /diag (text) and /diag.json, the event journal at /journal,
// and net/http/pprof under /debug/pprof/. cfg has the same role as in
// Diagnose. Wire it to a listener to observe a run while it executes.
func ObsHandler(rec *Recorder, cfg *Cluster) http.Handler {
	return obs.Handler(rec, obs.AnalyzeOptions{Cluster: cfg})
}

// Chaos engineering types, re-exported from the chaos package.
type (
	// ChaosPlan is a deterministic seed-driven fault plan; attach one via
	// Options.Chaos to inject task failures, stragglers, fetch/block-read
	// failures and a node crash into a parallel engine's run. A given seed
	// yields byte-identical results and timings on every run.
	ChaosPlan = chaos.Plan
	// NodeCrash schedules a whole-node failure at a virtual time.
	NodeCrash = chaos.NodeCrash
	// Straggler slows one node by a constant factor.
	Straggler = chaos.Straggler
	// Resilience configures the engines' fault mitigation (speculation,
	// blacklisting, re-replication).
	Resilience = chaos.Resilience
)

// DefaultChaosPlan returns the standard fault plan for a seed: 5% task
// failures, 2% shuffle-fetch failures, 1% block-read failures and one 4x
// straggler node. Engines mitigate with chaos.Defaults unless overridden.
func DefaultChaosPlan(seed int64) *ChaosPlan { return chaos.DefaultPlan(seed) }

// WriteChromeTrace writes a recorded run as Chrome trace-event JSON, loadable
// in Perfetto or chrome://tracing: one process per simulated node, one thread
// per core, every job/stage/task as a complete event on the virtual timeline.
var WriteChromeTrace = obs.WriteChromeTrace

// WriteStageTable renders the Spark-Web-UI-style per-stage skew table.
var WriteStageTable = obs.WriteStageTable

// WriteCounters renders a counter snapshot as an aligned key/value table.
var WriteCounters = obs.WriteCounters

// Cluster describes simulated hardware plus a runtime profile.
type Cluster = cluster.Config

// Cluster presets.
var (
	// ClusterSpark is the paper's 12-node testbed running the Spark-style
	// runtime (resident executors, cheap stages).
	ClusterSpark = cluster.PaperSpark
	// ClusterHadoop is the same hardware running the Hadoop-1.x-style
	// MapReduce runtime (per-job startup, per-task JVMs).
	ClusterHadoop = cluster.PaperHadoop
	// ClusterLocal is a small 2-node configuration for tests and demos.
	ClusterLocal = cluster.Local
)

// NewItemset builds a canonical itemset from items.
func NewItemset(items ...Item) Itemset { return itemset.New(items...) }

// NewDB builds a database from raw transactions.
func NewDB(name string, rows [][]Item) *DB { return itemset.NewDB(name, rows) }

// LoadFile reads a transaction database in .dat format (one transaction per
// line, whitespace-separated non-negative item ids).
func LoadFile(name, path string) (*DB, error) { return dataset.LoadFile(name, path) }

// SaveFile writes a database to the local file system in .dat format.
func SaveFile(db *DB, path string) error { return dataset.SaveFile(db, path) }

// Engine selects a mining implementation.
type Engine int

const (
	// EngineYAFIM is the paper's contribution: parallel Apriori on the
	// Spark-substitute RDD engine with a cached transactions RDD and
	// broadcast candidate hash trees.
	EngineYAFIM Engine = iota
	// EngineMapReduce is the comparator: k-phase Apriori where every pass
	// is a full MapReduce job over the DFS.
	EngineMapReduce
	// EngineSequential is the single-core reference Apriori.
	EngineSequential
	// EngineEclat is the vertical-layout depth-first baseline.
	EngineEclat
	// EngineFPGrowth is the candidate-free FP-tree baseline.
	EngineFPGrowth
	// EngineSON is the one-phase SON algorithm on MapReduce: local mining
	// per input split, then a single exact counting job.
	EngineSON
	// EngineDHP is sequential Apriori with Park et al.'s direct hashing and
	// pruning of the second pass's candidates.
	EngineDHP
	// EnginePartition is the two-scan Partition algorithm of Savasere et
	// al., the sequential ancestor of SON.
	EnginePartition
	// EngineToivonen is Toivonen's sampling algorithm with negative-border
	// verification; exact, with a full-mine fallback on sampling misses.
	EngineToivonen
	// EngineDistEclat is Dist-Eclat on the RDD engine: broadcast vertical
	// tidlists mined depth-first by prefix subtree across the cluster.
	EngineDistEclat
	// EngineAprioriTid is Agrawal & Srikant's AprioriTid: after pass one the
	// raw data is never re-scanned; transactions carry candidate encodings.
	EngineAprioriTid
	// EngineRDDEclat is RDD-Eclat on the RDD engine: equivalence-class-
	// partitioned Eclat with dense word-at-a-time bitset tidlist kernels.
	EngineRDDEclat
)

func (e Engine) String() string {
	switch e {
	case EngineYAFIM:
		return "yafim"
	case EngineMapReduce:
		return "mapreduce"
	case EngineSequential:
		return "sequential"
	case EngineEclat:
		return "eclat"
	case EngineFPGrowth:
		return "fpgrowth"
	case EngineSON:
		return "son"
	case EngineDHP:
		return "dhp"
	case EnginePartition:
		return "partition"
	case EngineToivonen:
		return "toivonen"
	case EngineDistEclat:
		return "disteclat"
	case EngineAprioriTid:
		return "aprioritid"
	case EngineRDDEclat:
		return "rddeclat"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine resolves an engine by its String name.
func ParseEngine(name string) (Engine, error) {
	for _, e := range []Engine{EngineYAFIM, EngineMapReduce, EngineSequential,
		EngineEclat, EngineFPGrowth, EngineSON, EngineDHP, EnginePartition,
		EngineToivonen, EngineDistEclat, EngineAprioriTid, EngineRDDEclat} {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("yafim: unknown engine %q", name)
}

// Options configures Mine.
type Options struct {
	// Engine selects the implementation (default EngineYAFIM).
	Engine Engine
	// Cluster is the simulated cluster for the parallel engines (default
	// the paper's 12-node testbed in the engine's matching runtime profile).
	Cluster *Cluster
	// MaxK stops after frequent itemsets of this size (0 = unbounded).
	MaxK int
	// Tasks is the parallel task-granularity hint (0 = 2x cluster cores).
	Tasks int
	// Recorder, when non-nil, captures telemetry (spans on the virtual
	// timeline plus runtime counters) from the parallel engines. Sequential
	// engines ignore it.
	Recorder *Recorder
	// Chaos, when non-nil, injects the seeded fault plan into the parallel
	// engines (yafim, mapreduce, disteclat, rddeclat); mining results are
	// unaffected —
	// only the virtual timeline shows the faults and their mitigation.
	// Sequential engines ignore it.
	Chaos *ChaosPlan
	// Deadline, when positive, bounds the run's real (wall-clock) time. A
	// run that exceeds it returns an error matching ErrDeadlineExceeded
	// within one task boundary. It composes with any deadline already on the
	// context passed to MineContext: whichever expires first wins.
	Deadline time.Duration
}

// validate rejects unusable Mine arguments up front with *InputError, so
// malformed calls fail fast instead of surfacing as a confusing engine
// failure (or running forever).
func (opts Options) validate(db *DB, minSupport float64) error {
	if db == nil {
		return &InputError{Field: "db", Reason: "must not be nil"}
	}
	if math.IsNaN(minSupport) {
		return &InputError{Field: "minSupport", Reason: "must not be NaN"}
	}
	if minSupport <= 0 || minSupport > 1 {
		return &InputError{Field: "minSupport",
			Reason: fmt.Sprintf("must be in (0, 1], got %g", minSupport)}
	}
	if opts.MaxK < 0 {
		return &InputError{Field: "MaxK",
			Reason: fmt.Sprintf("must not be negative, got %d", opts.MaxK)}
	}
	if opts.Tasks < 0 {
		return &InputError{Field: "Tasks",
			Reason: fmt.Sprintf("must not be negative, got %d", opts.Tasks)}
	}
	if opts.Deadline < 0 {
		return &InputError{Field: "Deadline",
			Reason: fmt.Sprintf("must not be negative, got %v", opts.Deadline)}
	}
	return nil
}

// Mine finds all frequent itemsets of db at the given relative minimum
// support with the selected engine. The sequential engines return a Trace
// whose single pass covers the whole run and whose duration is the real
// elapsed time; parallel engines report per-pass virtual cluster time.
//
// Mine is MineContext with a background context: it cannot be canceled
// except through Options.Deadline.
func Mine(db *DB, minSupport float64, opts Options) (*Trace, error) {
	return MineContext(context.Background(), db, minSupport, opts)
}

// MineContext is Mine with cooperative cancellation. Canceling ctx (or
// exceeding its deadline, or Options.Deadline) stops the run at the next
// task boundary — or mid-scan for the dataset-sized loops — and returns an
// error matching ErrCanceled or ErrDeadlineExceeded. A partial telemetry
// trace recorded up to the cancellation point remains valid and writable.
func MineContext(ctx context.Context, db *DB, minSupport float64, opts Options) (*Trace, error) {
	if err := opts.validate(db, minSupport); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	switch opts.Engine {
	case EngineYAFIM:
		cfg := clusterOrDefault(opts.Cluster, cluster.PaperSpark)
		trace, _, err := experiments.RunYAFIM(ctx, db, minSupport, cfg, tasks(opts, cfg),
			yafim.Config{MaxK: opts.MaxK}, rddOptions(opts)...)
		return trace, err
	case EngineMapReduce:
		cfg := clusterOrDefault(opts.Cluster, cluster.PaperHadoop)
		trace, _, err := experiments.RunMRApriori(ctx, db, minSupport, cfg, tasks(opts, cfg),
			mrapriori.Config{MaxK: opts.MaxK}, opts.Recorder, opts.Chaos)
		return trace, err
	case EngineSequential:
		return timed(ctx, func() (*Result, error) {
			return apriori.Mine(db, minSupport, apriori.Options{
				MaxK:      opts.MaxK,
				Interrupt: func() error { return exec.ContextErr(ctx) },
			})
		})
	case EngineEclat:
		return timed(ctx, func() (*Result, error) { return eclat.Mine(db, minSupport) })
	case EngineFPGrowth:
		return timed(ctx, func() (*Result, error) { return fpgrowth.Mine(db, minSupport) })
	case EngineSON:
		cfg := clusterOrDefault(opts.Cluster, cluster.PaperHadoop)
		trace, _, err := experiments.RunSON(ctx, db, minSupport, cfg, tasks(opts, cfg), opts.Recorder)
		return trace, err
	case EngineDHP:
		return timed(ctx, func() (*Result, error) { return apriori.MineDHP(db, minSupport, 0) })
	case EnginePartition:
		return timed(ctx, func() (*Result, error) { return apriori.MinePartition(db, minSupport, 0) })
	case EngineToivonen:
		return timed(ctx, func() (*Result, error) {
			return apriori.MineToivonen(db, minSupport, apriori.ToivonenOptions{Seed: 1})
		})
	case EngineDistEclat:
		cfg := clusterOrDefault(opts.Cluster, cluster.PaperSpark)
		trace, _, err := experiments.RunDistEclat(ctx, db, minSupport, cfg, tasks(opts, cfg),
			rddOptions(opts)...)
		return trace, err
	case EngineAprioriTid:
		return timed(ctx, func() (*Result, error) { return apriori.MineAprioriTid(db, minSupport) })
	case EngineRDDEclat:
		cfg := clusterOrDefault(opts.Cluster, cluster.PaperSpark)
		trace, _, err := experiments.RunRDDEclat(ctx, db, minSupport, cfg, tasks(opts, cfg),
			rddeclat.Config{MaxK: opts.MaxK}, rddOptions(opts)...)
		return trace, err
	default:
		return nil, fmt.Errorf("yafim: unknown engine %v", opts.Engine)
	}
}

// rddOptions translates facade options into RDD engine options.
func rddOptions(opts Options) []rdd.Option {
	var out []rdd.Option
	if opts.Recorder != nil {
		out = append(out, rdd.WithRecorder(opts.Recorder))
	}
	if opts.Chaos != nil {
		out = append(out, rdd.WithChaos(opts.Chaos))
	}
	return out
}

func clusterOrDefault(c *Cluster, def func() Cluster) Cluster {
	if c != nil {
		return *c
	}
	return def()
}

func tasks(opts Options, cfg Cluster) int {
	if opts.Tasks > 0 {
		return opts.Tasks
	}
	return 2 * cfg.TotalCores()
}

// timed runs a sequential engine, checking the context once up front (most
// sequential baselines have no interior interruption points) and wrapping
// the result in a single-pass Trace.
func timed(ctx context.Context, run func() (*Result, error)) (*Trace, error) {
	if err := exec.ContextErr(ctx); err != nil {
		return nil, fmt.Errorf("yafim: %w", err)
	}
	start := time.Now()
	res, err := run()
	if err != nil {
		return nil, err
	}
	return &Trace{
		Result: res,
		Passes: []PassStat{{K: res.MaxK(), Frequent: res.NumFrequent(), Duration: time.Since(start)}},
	}, nil
}

// GenerateRules derives association rules with at least minConfidence from
// a mining result over numTransactions records.
func GenerateRules(res *Result, minConfidence float64, numTransactions int) ([]Rule, error) {
	return rules.Generate(res, minConfidence, numTransactions)
}

// Benchmark dataset generators (deterministic given their seed); scale
// multiplies the transaction count (1.0 = the size reported in the paper's
// Table I).
var (
	GenMushroom   = datagen.MushroomLike
	GenChess      = datagen.ChessLike
	GenPumsbStar  = datagen.PumsbStarLike
	GenT10I4D100K = datagen.T10I4D100K
	GenMedical    = datagen.MedicalCases
	GenKosarak    = datagen.KosarakLike
	GenRetail     = datagen.RetailLike
)
