package yafim

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"yafim/internal/leaktest"
)

func robustDB(t testing.TB) *DB {
	t.Helper()
	db, err := GenMushroom(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestMineInputValidation exercises every rejected argument: each must fail
// fast with a typed *InputError naming the offending field.
func TestMineInputValidation(t *testing.T) {
	db := robustDB(t)
	cases := []struct {
		name    string
		db      *DB
		support float64
		opts    Options
		field   string
	}{
		{"nil db", nil, 0.1, Options{}, "db"},
		{"NaN support", db, math.NaN(), Options{}, "minSupport"},
		{"zero support", db, 0, Options{}, "minSupport"},
		{"negative support", db, -0.5, Options{}, "minSupport"},
		{"support above one", db, 1.5, Options{}, "minSupport"},
		{"negative MaxK", db, 0.1, Options{MaxK: -1}, "MaxK"},
		{"negative Tasks", db, 0.1, Options{Tasks: -4}, "Tasks"},
		{"negative Deadline", db, 0.1, Options{Deadline: -time.Second}, "Deadline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Mine(c.db, c.support, c.opts)
			var ie *InputError
			if !errors.As(err, &ie) {
				t.Fatalf("err = %v, want *InputError", err)
			}
			if ie.Field != c.field {
				t.Errorf("field = %q, want %q", ie.Field, c.field)
			}
			if !strings.Contains(ie.Error(), c.field) {
				t.Errorf("message %q does not name the field", ie.Error())
			}
		})
	}
}

// TestMineContextCanceled verifies every engine family respects a canceled
// context: the parallel engines, the MapReduce engines, and the sequential
// engine via its per-pass interrupt hook.
func TestMineContextCanceled(t *testing.T) {
	defer leaktest.Check(t)()
	db := robustDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	small := ClusterLocal()
	for _, eng := range []Engine{EngineYAFIM, EngineMapReduce, EngineSON,
		EngineDistEclat, EngineSequential, EngineEclat} {
		t.Run(eng.String(), func(t *testing.T) {
			_, err := MineContext(ctx, db, 0.2, Options{Engine: eng, Cluster: &small})
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want to wrap context.Canceled", err)
			}
		})
	}
}

// TestMineDeadline verifies Options.Deadline cuts a run short with
// ErrDeadlineExceeded.
func TestMineDeadline(t *testing.T) {
	defer leaktest.Check(t)()
	db := robustDB(t)
	small := ClusterLocal()
	_, err := Mine(db, 0.2, Options{Cluster: &small, Deadline: time.Nanosecond})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Error("deadline expiry also matched ErrCanceled")
	}
}

// TestMineCanceledPartialTrace verifies that a run aborted by cancellation
// leaves its recorder writable: the partial virtual timeline still renders
// as Chrome trace JSON.
func TestMineCanceledPartialTrace(t *testing.T) {
	defer leaktest.Check(t)()
	db := robustDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := NewRecorder()
	small := ClusterLocal()
	_, err := MineContext(ctx, db, 0.2, Options{Cluster: &small, Recorder: rec})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, rec); err != nil {
		t.Fatalf("partial trace not writable: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("partial trace empty")
	}
}

// TestMineContextStillExact confirms the hardening changed nothing about
// results: a context-carrying run and a plain run agree exactly.
func TestMineContextStillExact(t *testing.T) {
	defer leaktest.Check(t)()
	db := robustDB(t)
	small := ClusterLocal()
	plain, err := Mine(db, 0.2, Options{Cluster: &small})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := MineContext(context.Background(), db, 0.2, Options{Cluster: &small})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Result.Equal(withCtx.Result) {
		t.Error("context-carrying run changed the mining result")
	}
}
