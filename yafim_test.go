package yafim

import (
	"os"
	"path/filepath"
	"testing"
)

func exampleDB() *DB {
	return NewDB("classic", [][]Item{
		{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3},
		{2, 3}, {1, 3}, {1, 2, 3, 5}, {1, 2, 3},
	})
}

// TestAllEnginesAgree is the repository's headline integration test: every
// engine — parallel YAFIM, parallel MapReduce, one-phase SON, sequential
// Apriori with its DHP / Partition / Toivonen variants, Eclat and FP-Growth
// — must produce byte-identical frequent itemsets.
func TestAllEnginesAgree(t *testing.T) {
	db := exampleDB()
	local := ClusterLocal()
	engines := []Engine{EngineYAFIM, EngineMapReduce, EngineSequential, EngineEclat,
		EngineFPGrowth, EngineSON, EngineDHP, EnginePartition, EngineToivonen,
		EngineDistEclat, EngineAprioriTid, EngineRDDEclat}
	var first *Result
	for _, e := range engines {
		trace, err := Mine(db, 2.0/9.0, Options{Engine: e, Cluster: &local})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if first == nil {
			first = trace.Result
			if first.NumFrequent() != 13 {
				t.Fatalf("%v found %d itemsets, want 13", e, first.NumFrequent())
			}
			continue
		}
		if !trace.Result.Equal(first) {
			t.Errorf("%v disagrees with %v", e, engines[0])
		}
	}
}

func TestMineDefaultsToPaperCluster(t *testing.T) {
	trace, err := Mine(exampleDB(), 2.0/9.0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trace.Result.MaxK() != 3 {
		t.Fatalf("MaxK = %d", trace.Result.MaxK())
	}
	if trace.TotalDuration() <= 0 {
		t.Fatal("no virtual time recorded")
	}
}

func TestMineMaxK(t *testing.T) {
	local := ClusterLocal()
	for _, e := range []Engine{EngineYAFIM, EngineMapReduce, EngineSequential, EngineRDDEclat} {
		trace, err := Mine(exampleDB(), 2.0/9.0, Options{Engine: e, Cluster: &local, MaxK: 1})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if trace.Result.MaxK() != 1 {
			t.Errorf("%v: MaxK = %d", e, trace.Result.MaxK())
		}
	}
}

func TestMineUnknownEngine(t *testing.T) {
	if _, err := Mine(exampleDB(), 0.5, Options{Engine: Engine(42)}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestParseEngine(t *testing.T) {
	for _, e := range []Engine{EngineYAFIM, EngineMapReduce, EngineSequential, EngineEclat,
		EngineFPGrowth, EngineSON, EngineDHP, EnginePartition, EngineToivonen,
		EngineDistEclat, EngineAprioriTid, EngineRDDEclat} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("hive"); err == nil {
		t.Error("unknown engine name parsed")
	}
}

func TestGenerateRulesFacade(t *testing.T) {
	trace, err := Mine(exampleDB(), 2.0/9.0, Options{Engine: EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := GenerateRules(trace.Result, 0.5, exampleDB().Len())
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules generated")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.dat")
	if err := SaveFile(exampleDB(), path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile("classic", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != exampleDB().Len() {
		t.Fatalf("round trip lost transactions: %d", back.Len())
	}
	if _, err := LoadFile("missing", filepath.Join(dir, "nope.dat")); err == nil {
		t.Error("missing file loaded")
	}
	if err := SaveFile(exampleDB(), filepath.Join(dir, "no", "such", "dir.dat")); err == nil {
		t.Error("save into missing directory succeeded")
	}
	_ = os.Remove(path)
}

func TestGeneratorsExposed(t *testing.T) {
	gens := map[string]func(float64, int64) (*DB, error){
		"mushroom": GenMushroom, "chess": GenChess, "pumsb": GenPumsbStar,
		"t10": GenT10I4D100K, "medical": GenMedical,
		"kosarak": GenKosarak, "retail": GenRetail,
	}
	for name, gen := range gens {
		db, err := gen(0.01, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if db.Len() == 0 {
			t.Errorf("%s: empty dataset", name)
		}
	}
}
