package yafim

import (
	"context"
	"errors"
	"io"
	"net/http"

	"yafim/internal/dist"
	"yafim/internal/experiments"
	"yafim/internal/mrapriori"
	"yafim/internal/obs"
)

// Distributed runtime types, re-exported from the dist package. The
// in-memory simulation remains the repository's correctness oracle; the
// distributed runtime executes the same registered job closures across real
// OS processes with registration, heartbeats, task leases and crash
// reassignment. See DESIGN.md for the protocol.
type (
	// DistMaster is the driver-side master: it owns the lease table, the
	// liveness monitor and the job queue, and serves the worker protocol
	// plus live observability endpoints over HTTP.
	DistMaster = dist.Master
	// DistTuning sets the protocol timing knobs (heartbeat interval and
	// timeout, lease deadline, attempt budget, blacklist windows) and the
	// per-worker input block cache budget (InputCacheBytes; 0 means the
	// 256 MiB default, negative is rejected).
	DistTuning = dist.Tuning
	// DistWorkerOptions configures one worker process.
	DistWorkerOptions = dist.WorkerOptions
	// DistMasterOptions configures StartDistMaster, including the master's
	// write-ahead journal and crash-recovery resume.
	DistMasterOptions = dist.MasterOptions
	// DistTransportPlan is a seeded network-fault schedule for a
	// DistChaosTransport: drop, delay and duplicate probabilities plus
	// link-partition windows, all deterministic in the seed.
	DistTransportPlan = dist.TransportPlan
	// DistLinkPartition cuts links matching a target substring for a
	// real-time window of a DistTransportPlan.
	DistLinkPartition = dist.LinkPartition
	// DistChaosTransport is an http.RoundTripper injecting a
	// DistTransportPlan's faults; plug it into DistWorkerOptions.Transport.
	DistChaosTransport = dist.ChaosTransport
	// LiveLog is a bounded in-memory journal of live runtime events
	// (registrations, leases, completions, deaths, recoveries), drainable
	// as JSONL while a run executes.
	LiveLog = obs.EventLog
	// LiveEvent is one LiveLog record.
	LiveEvent = obs.LiveEvent
	// MetricsRegistry is a live Prometheus-text metric registry.
	MetricsRegistry = obs.Registry
)

// DefaultDistTuning returns production-shaped protocol timing.
func DefaultDistTuning() DistTuning { return dist.DefaultTuning() }

// NewLiveLog creates a live event journal. mirror, when non-nil, receives
// every event as one JSON line the moment it is appended.
func NewLiveLog(mirror io.Writer) *LiveLog { return obs.NewEventLog(mirror) }

// NewMetricsRegistry creates an empty live metric registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewDistMaster starts a master serving the worker protocol on addr
// (host:port, port 0 for ephemeral). log and reg may be nil. Journal-less
// convenience wrapper around StartDistMaster.
func NewDistMaster(addr string, t DistTuning, log *LiveLog, reg *MetricsRegistry) (*DistMaster, error) {
	return StartDistMaster(DistMasterOptions{Addr: addr, Tuning: t, Log: log, Reg: reg})
}

// StartDistMaster starts a master with the full option surface: set
// JournalPath to write-ahead journal every lease-table transition, and
// Resume to rebuild the table from that journal after a master crash —
// surviving workers reconnect and re-advertise their map outputs, finished
// passes return memoized, and the interrupted pass resumes where the journal
// left it. Invalid options surface as *InputError.
func StartDistMaster(opts DistMasterOptions) (*DistMaster, error) {
	m, err := dist.StartMaster(opts)
	if err != nil {
		var ie *dist.InputError
		if errors.As(err, &ie) {
			return nil, &InputError{Field: ie.Field, Reason: ie.Reason}
		}
		return nil, err
	}
	return m, nil
}

// DefaultDistTransportPlan returns a moderate seeded all-faults plan (drops,
// lost responses, duplicates, delays on every link) for chaos smoke runs.
func DefaultDistTransportPlan(seed int64) DistTransportPlan {
	return dist.DefaultTransportPlan(seed)
}

// NewDistChaosTransport wraps base (nil means http.DefaultTransport) with
// the plan's seeded fault schedule. The mined result under any plan must be
// byte-identical to a fault-free run — the worker protocol is idempotent
// under duplicated, delayed and lost delivery; this transport is how that
// claim is exercised.
func NewDistChaosTransport(plan DistTransportPlan, base http.RoundTripper) (*DistChaosTransport, error) {
	return dist.NewChaosTransport(plan, base)
}

// RunDistWorker runs a worker against the master until ctx is canceled,
// then drains gracefully: the in-flight task is finished and reported
// before the worker exits.
func RunDistWorker(ctx context.Context, opts DistWorkerOptions) error {
	return dist.RunWorker(ctx, opts)
}

// MineDistributed mines the transaction file at inputPath through the
// distributed master: every pass of the k-phase MapReduce Apriori runs as
// real map and reduce tasks leased to worker processes. Options.Engine is
// ignored (the distributed runtime executes the MapReduce comparator);
// MaxK and Tasks apply as in MineContext. The result is byte-identical to
// the in-memory sim oracle's on the same dataset and support.
func MineDistributed(ctx context.Context, m *DistMaster, inputPath string,
	minSupport float64, opts Options) (*Trace, error) {
	return mrapriori.MineDistributed(ctx, m, inputPath, mrapriori.Config{
		MinSupport:  minSupport,
		MaxK:        opts.MaxK,
		NumMapTasks: opts.Tasks,
	})
}

// GenDataset generates one of the paper's benchmark datasets ("MushRoom",
// "T10I4D100K", "Chess", "Pumsb_star", "MedicalCases") at the given scale
// (1.0 = paper size) with a deterministic seed. Handy for smoke-testing the
// distributed runtime without shipping fixture files.
func GenDataset(name string, scale float64, seed int64) (*DB, error) {
	bm, err := experiments.FindBenchmark(name)
	if err != nil {
		return nil, err
	}
	return bm.Gen(scale, seed)
}
