package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"yafim"
	"yafim/internal/leaktest"
)

// TestMain doubles as the CLI when re-exec'd by -dist smoke: smoke mode
// forks os.Executable() — this test binary — with YAFIM_CLI_REEXEC set, and
// the child must behave like the real yafim command.
func TestMain(m *testing.M) {
	if os.Getenv("YAFIM_CLI_REEXEC") != "" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := run(ctx, os.Args[1:], io.Discard, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "yafim:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writeDataset saves a small generated transaction file and returns its path.
func writeDataset(t *testing.T) string {
	t.Helper()
	db, err := yafim.GenDataset("MushRoom", 0.02, 2014)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mushroom.dat")
	if err := yafim.SaveFile(db, path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMinesQuietly(t *testing.T) {
	defer leaktest.Check(t)()
	input := writeDataset(t)
	var out, errOut strings.Builder
	err := run(context.Background(),
		[]string{"-input", input, "-support", "0.35", "-q"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "engine=yafim") {
		t.Errorf("summary line missing from output:\n%s", out.String())
	}
}

// TestRunFlushesTelemetryOnCancel is the SIGINT path: NotifyContext turns
// the signal into context cancellation, and the telemetry captured up to
// that point must still reach the -trace and -journal files.
func TestRunFlushesTelemetryOnCancel(t *testing.T) {
	defer leaktest.Check(t)()
	input := writeDataset(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "out.trace.json")
	journalPath := filepath.Join(dir, "out.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the signal has already arrived
	var out, errOut strings.Builder
	err := run(ctx, []string{"-input", input, "-support", "0.35", "-q",
		"-trace", tracePath, "-journal", journalPath, "-stats", "-diag"}, &out, &errOut)
	if !errors.Is(err, yafim.ErrCanceled) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	for _, p := range []string{tracePath, journalPath} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("telemetry file not flushed on cancel: %v", err)
		}
	}
	if !strings.Contains(errOut.String(), "partial trace written") {
		t.Errorf("no partial-flush notice on stderr:\n%s", errOut.String())
	}
}

// TestRunFlushesTelemetryOnDeadline is the -timeout path.
func TestRunFlushesTelemetryOnDeadline(t *testing.T) {
	defer leaktest.Check(t)()
	input := writeDataset(t)
	tracePath := filepath.Join(t.TempDir(), "out.trace.json")
	var out, errOut strings.Builder
	err := run(context.Background(), []string{"-input", input, "-support", "0.35",
		"-q", "-timeout", "1ns", "-trace", tracePath}, &out, &errOut)
	if !errors.Is(err, yafim.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Errorf("trace not flushed on deadline: %v", err)
	}
}

// TestRunFlushesTelemetryOnMiningError covers the third exit family: an
// ordinary mining failure (not a cancellation) must flush too.
func TestRunFlushesTelemetryOnMiningError(t *testing.T) {
	defer leaktest.Check(t)()
	input := writeDataset(t)
	journalPath := filepath.Join(t.TempDir(), "out.jsonl")
	var out, errOut strings.Builder
	err := run(context.Background(), []string{"-input", input, "-support", "0.35",
		"-q", "-maxk", "-1", "-journal", journalPath}, &out, &errOut)
	if err == nil || errors.Is(err, yafim.ErrCanceled) {
		t.Fatalf("err = %v, want a plain mining error", err)
	}
	if _, err := os.Stat(journalPath); err != nil {
		t.Errorf("journal not flushed on mining error: %v", err)
	}
}

// TestRunListenJoinsServer starts the live HTTP surface and leans on
// leaktest: if the serve goroutine outlived run, the check fails.
func TestRunListenJoinsServer(t *testing.T) {
	defer leaktest.Check(t)()
	input := writeDataset(t)
	var out, errOut strings.Builder
	err := run(context.Background(), []string{"-input", input, "-support", "0.35",
		"-q", "-listen", "127.0.0.1:0"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknownDistMode(t *testing.T) {
	defer leaktest.Check(t)()
	err := run(context.Background(), []string{"-dist", "nonsense"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown -dist mode") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunWorkerRequiresMasterURL(t *testing.T) {
	defer leaktest.Check(t)()
	err := run(context.Background(), []string{"-dist", "worker"}, io.Discard, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-dist-master") {
		t.Fatalf("err = %v", err)
	}
}

// TestRunDistSmokeCLI drives the whole -dist smoke mode in-test: the forked
// workers are re-execs of this test binary (see TestMain), one gets
// SIGKILLed mid-run, and run itself verifies parity with the sim oracle.
func TestRunDistSmokeCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("forks real worker processes")
	}
	defer leaktest.Check(t)()
	logs := t.TempDir()
	var out, errOut strings.Builder
	err := run(context.Background(), []string{"-dist", "smoke", "-dist-logs", logs,
		"-timeout", "120s"}, &out, &errOut)
	if err != nil {
		t.Fatalf("smoke: %v\nstderr: %s", err, errOut.String())
	}
	if !strings.Contains(out.String(), "PARITY OK") {
		t.Errorf("no parity confirmation:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "SIGKILLed worker") {
		t.Errorf("no kill notice:\n%s", errOut.String())
	}
	if _, err := os.Stat(filepath.Join(logs, "master-journal.jsonl")); err != nil {
		t.Errorf("master journal missing: %v", err)
	}
}
