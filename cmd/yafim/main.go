// Command yafim mines frequent itemsets from a transaction file with any of
// the repository's engines and optionally derives association rules.
//
// Usage:
//
//	yafim -input retail.dat -support 0.01 [-engine yafim] [-rules 0.8]
//	yafim -input retail.dat -trace out.json -stats
//
// The parallel engines (yafim, mapreduce) run on the paper's simulated
// 12-node cluster and report per-pass virtual cluster time; the sequential
// engines (sequential, eclat, fpgrowth) report real elapsed time.
//
// Observability flags (parallel engines): -trace writes a Chrome trace-event
// JSON of the run's virtual timeline (load it in Perfetto or
// chrome://tracing), -stats prints a Spark-Web-UI-style per-stage skew table
// plus the counter totals, and -json emits a machine-readable run summary.
// -diag prints the critical-path and skew diagnosis (straggler attribution,
// per-stage Gini, hot partitions), -journal writes a JSONL event journal of
// the virtual timeline, and -listen serves the live run over HTTP: Prometheus
// text at /metrics, the diagnosis at /diag and /diag.json, the journal at
// /journal, and net/http/pprof under /debug/pprof/.
//
// Distributed mode (-dist) swaps the in-process simulation for the real
// multi-process MapReduce runtime of internal/dist:
//
//	yafim -dist master -dist-addr :7077 -input retail.dat -support 0.01
//	yafim -dist worker -dist-master http://host:7077          # on each worker
//	yafim -dist smoke                                          # self-contained demo
//
// A master serves the worker protocol (registration, heartbeats, task
// leases) plus live observability (/metrics, /dist/events) on -dist-addr,
// waits for -dist-workers workers, then runs every mining pass as real map
// and reduce tasks leased to the worker processes; -journal mirrors the live
// protocol journal to a file as it happens. With -dist-wal the master
// write-ahead journals its lease table, and -dist-resume rebuilds it from
// that journal after a crash — surviving workers reconnect on their own (see
// README "Surviving a master restart"). A worker joins the given master and
// drains gracefully on SIGTERM; -dist-chaos seeds a network-fault transport
// (drops, delays, duplicates) under every call the worker makes. Each worker
// keeps the decoded input splits in an in-memory block cache
// (-dist-cache-bytes budgets it, delivered from the master at registration)
// so the k-pass mining job reads the input from disk once per worker, not
// once per pass; the master's /metrics exports the cache counters
// (dist_input_reads_total, dist_input_cache_{hits,misses,evictions}_total,
// dist_input_cache_bytes). Smoke mode forks its own workers, SIGKILLs one
// mid-run (disable with -dist-kill=false), verifies the surviving run's
// itemsets are byte-identical to the in-memory sim oracle, and asserts the
// once-per-worker read invariant from those counters, dumping them to
// cache-metrics.prom next to the worker logs.
//
// Runs are interruptible: -timeout bounds the real (wall-clock) time of the
// mining run, and Ctrl-C (SIGINT) or SIGTERM cancels it at the next task
// boundary. Every exit path — success, cancellation, deadline, mining error
// — shuts the live HTTP surface down and flushes the telemetry recorded so
// far, so a partial timeline of an aborted run remains inspectable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	osexec "os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"yafim"
)

func main() {
	// SIGINT/SIGTERM cancel the mining context; a second signal kills the
	// process immediately (NotifyContext restores default handling once the
	// context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, yafim.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "yafim: interrupted:", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "yafim:", err)
		os.Exit(1)
	}
}

// cliFlags is the parsed command line, shared by the sim and dist modes.
type cliFlags struct {
	input    string
	support  float64
	engine   string
	mode     string
	maxK     int
	nodes    int
	ruleConf float64
	top      int
	quiet    bool
	traceOut string
	stats    bool
	chaosS   int64
	jsonOut  bool
	timeout  time.Duration
	listen   string
	journal  string
	diag     bool

	dist        string
	distAddr    string
	distMaster  string
	distWorkers int
	distKill    bool
	distLogs    string
	distWAL     string
	distResume  bool
	distChaos   int64
	distCacheB  int64

	supportSet bool
}

// run is the whole CLI behind a testable seam: flags come from args, output
// goes to the writers, and every resource it opens (listeners, journals,
// forked workers) is released on every return path.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("yafim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var f cliFlags
	fs.StringVar(&f.input, "input", "", "transaction file in .dat format (required)")
	fs.Float64Var(&f.support, "support", 0.01, "relative minimum support in (0,1]")
	fs.StringVar(&f.engine, "engine", "yafim", "engine: yafim, mapreduce, sequential, eclat, fpgrowth, son, dhp, partition, toivonen, disteclat, aprioritid, rddeclat")
	fs.StringVar(&f.mode, "mode", "all", "itemsets to report: all, closed, maximal")
	fs.IntVar(&f.maxK, "maxk", 0, "stop after frequent itemsets of this size (0 = unbounded)")
	fs.IntVar(&f.nodes, "nodes", 0, "override simulated node count for parallel engines")
	fs.Float64Var(&f.ruleConf, "rules", 0, "if > 0, derive association rules at this confidence")
	fs.IntVar(&f.top, "top", 20, "itemsets/rules to print per section")
	fs.BoolVar(&f.quiet, "q", false, "print only summary lines")
	fs.StringVar(&f.traceOut, "trace", "", "write Chrome trace-event JSON of the virtual timeline to this file")
	fs.BoolVar(&f.stats, "stats", false, "print per-stage skew table and counter totals")
	fs.Int64Var(&f.chaosS, "chaos", 0, "if != 0, inject the seeded chaos fault plan into parallel engines")
	fs.BoolVar(&f.jsonOut, "json", false, "print a machine-readable JSON run summary instead of text")
	fs.DurationVar(&f.timeout, "timeout", 0, "abort the mining run after this much real time (0 = no limit)")
	fs.StringVar(&f.listen, "listen", "", "serve /metrics, /diag, /journal and /debug/pprof/ on this address while the run executes")
	fs.StringVar(&f.journal, "journal", "", "write a JSONL event journal (virtual timeline, or live protocol events under -dist) to this file")
	fs.BoolVar(&f.diag, "diag", false, "print the critical-path and skew diagnosis after the run")
	fs.StringVar(&f.dist, "dist", "", "distributed mode: master, worker, or smoke (default: in-process simulation)")
	fs.StringVar(&f.distAddr, "dist-addr", "127.0.0.1:7077", "master listen address for -dist master")
	fs.StringVar(&f.distMaster, "dist-master", "", "master base URL for -dist worker (http://host:port)")
	fs.IntVar(&f.distWorkers, "dist-workers", 2, "workers to wait for (-dist master) or to fork (-dist smoke)")
	fs.BoolVar(&f.distKill, "dist-kill", true, "SIGKILL one forked worker mid-run under -dist smoke")
	fs.StringVar(&f.distLogs, "dist-logs", "", "directory for worker logs and the master journal under -dist smoke (default: a temp dir)")
	fs.StringVar(&f.distWAL, "dist-wal", "", "write-ahead journal file for the master's lease table (-dist master/smoke); enables crash recovery")
	fs.BoolVar(&f.distResume, "dist-resume", false, "replay -dist-wal before serving (-dist master): resume a crashed master's state")
	fs.Int64Var(&f.distChaos, "dist-chaos", 0, "seed a network-fault transport (drops, delays, duplicates) into workers; 0 disables")
	fs.Int64Var(&f.distCacheB, "dist-cache-bytes", 0, "per-worker input block cache budget in bytes (-dist master/smoke; 0 = default 256 MiB, negative rejected)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	fs.Visit(func(fl *flag.Flag) {
		if fl.Name == "support" {
			f.supportSet = true
		}
	})

	switch f.dist {
	case "":
		return runSim(ctx, f, fs, stdout, stderr)
	case "worker":
		return runDistWorker(ctx, f, stderr)
	case "master":
		return runDistMaster(ctx, f, stdout, stderr)
	case "smoke":
		return runDistSmoke(ctx, f, stdout, stderr)
	default:
		return fmt.Errorf("unknown -dist mode %q (want master, worker or smoke)", f.dist)
	}
}

// runSim is the classic single-process path: every engine runs on the
// in-memory virtual-time cluster (or natively for the sequential engines).
func runSim(ctx context.Context, f cliFlags, fs *flag.FlagSet, stdout, stderr io.Writer) error {
	if f.input == "" {
		fs.Usage()
		return fmt.Errorf("-input is required")
	}
	eng, err := yafim.ParseEngine(f.engine)
	if err != nil {
		return err
	}
	db, err := yafim.LoadFile(filepath.Base(f.input), f.input)
	if err != nil {
		return err
	}
	st := db.ComputeStats()
	if !f.jsonOut {
		fmt.Fprintf(stdout, "%s: %d transactions, %d items, avg length %.1f\n",
			f.input, st.NumTransactions, st.NumItems, st.AvgLength)
	}

	opts := yafim.Options{Engine: eng, MaxK: f.maxK, Deadline: f.timeout}
	if f.traceOut != "" || f.stats || f.jsonOut || f.listen != "" || f.journal != "" || f.diag {
		opts.Recorder = yafim.NewRecorder()
	}
	if f.chaosS != 0 {
		opts.Chaos = yafim.DefaultChaosPlan(f.chaosS)
	}
	if f.nodes > 0 {
		cfg := yafim.ClusterSpark()
		if eng == yafim.EngineMapReduce {
			cfg = yafim.ClusterHadoop()
		}
		cfg = cfg.WithNodes(f.nodes)
		opts.Cluster = &cfg
	}
	// The cluster the diagnosis should judge task durations against: the
	// explicit override when given, otherwise the engine's default.
	diagCluster := opts.Cluster
	if diagCluster == nil {
		switch eng {
		case yafim.EngineYAFIM:
			c := yafim.ClusterSpark()
			diagCluster = &c
		case yafim.EngineMapReduce:
			c := yafim.ClusterHadoop()
			diagCluster = &c
		}
	}
	if f.listen != "" {
		ln, err := net.Listen("tcp", f.listen)
		if err != nil {
			return fmt.Errorf("-listen: %w", err)
		}
		fmt.Fprintf(stderr, "yafim: serving diagnostics on http://%s/\n", ln.Addr())
		srv := &http.Server{Handler: yafim.ObsHandler(opts.Recorder, diagCluster)}
		served := make(chan struct{})
		go func() {
			defer close(served)
			srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
		}()
		// Joined, not just closed: the serve goroutine must be gone before
		// run returns on any path, or an aborted run leaks it.
		defer func() {
			srv.Close() //nolint:errcheck
			<-served
		}()
	}

	trace, err := yafim.MineContext(ctx, db, f.support, opts)
	if err != nil {
		// Every abort — SIGINT, -timeout deadline, or a mining error —
		// still flushes the telemetry captured so far: the partial timeline
		// is exactly what explains where the run was when it died.
		flushPartial(f, opts.Recorder, diagCluster, stderr)
		return err
	}

	if f.traceOut != "" {
		if err := writeTrace(f.traceOut, opts.Recorder); err != nil {
			return err
		}
	}
	if f.journal != "" {
		if err := writeJournalFile(f.journal, opts.Recorder); err != nil {
			return err
		}
	}
	if f.jsonOut {
		if f.diag {
			if err := yafim.WriteDiagnosis(stderr, yafim.Diagnose(opts.Recorder, diagCluster)); err != nil {
				return err
			}
		}
		return writeJSONSummary(stdout, eng, f.support, trace, opts.Recorder)
	}

	fmt.Fprintf(stdout, "engine=%s support=%g%% frequent=%d maxk=%d time=%v\n",
		eng, f.support*100, trace.Result.NumFrequent(), trace.Result.MaxK(),
		trace.TotalDuration().Round(1e6))
	if f.stats {
		if err := yafim.WriteStageTable(stdout, opts.Recorder); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "counters:")
		if err := yafim.WriteCounters(stdout, opts.Recorder.Counters()); err != nil {
			return err
		}
	}
	if f.diag {
		if err := yafim.WriteDiagnosis(stdout, yafim.Diagnose(opts.Recorder, diagCluster)); err != nil {
			return err
		}
	}
	return report(stdout, f, trace, db)
}

// flushPartial writes whatever telemetry an aborted run accumulated: the
// Chrome trace and JSONL journal to their files, the stage table and
// diagnosis to stderr. Best-effort by design — the run's own error is what
// the caller returns; flush failures are only noted.
func flushPartial(f cliFlags, rec *yafim.Recorder, diagCluster *yafim.Cluster, stderr io.Writer) {
	if rec == nil {
		return
	}
	if f.traceOut != "" {
		if werr := writeTrace(f.traceOut, rec); werr != nil {
			fmt.Fprintln(stderr, "yafim: partial trace:", werr)
		} else {
			fmt.Fprintln(stderr, "yafim: partial trace written to", f.traceOut)
		}
	}
	if f.journal != "" {
		if werr := writeJournalFile(f.journal, rec); werr != nil {
			fmt.Fprintln(stderr, "yafim: partial journal:", werr)
		} else {
			fmt.Fprintln(stderr, "yafim: partial journal written to", f.journal)
		}
	}
	if f.stats {
		if werr := yafim.WriteStageTable(stderr, rec); werr != nil {
			fmt.Fprintln(stderr, "yafim: partial stage table:", werr)
		}
	}
	if f.diag {
		if werr := yafim.WriteDiagnosis(stderr, yafim.Diagnose(rec, diagCluster)); werr != nil {
			fmt.Fprintln(stderr, "yafim: partial diagnosis:", werr)
		}
	}
}

// report prints the human-readable tail of a successful run: passes,
// itemsets in the requested mode, and association rules when asked for.
func report(stdout io.Writer, f cliFlags, trace *yafim.Trace, db *yafim.DB) error {
	if !f.quiet {
		printPasses(stdout, trace)
		switch f.mode {
		case "all":
			printItemsets(stdout, trace.Result, f.top)
		case "closed":
			printDerived(stdout, "closed", trace.Result.Closed(), f.top)
		case "maximal":
			printDerived(stdout, "maximal", trace.Result.Maximal(), f.top)
		default:
			return fmt.Errorf("unknown mode %q", f.mode)
		}
	}
	if f.ruleConf > 0 {
		rules, err := yafim.GenerateRules(trace.Result, f.ruleConf, db.Len())
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "rules (confidence >= %g): %d\n", f.ruleConf, len(rules))
		for i, r := range rules {
			if i >= f.top {
				fmt.Fprintf(stdout, "  ... %d more\n", len(rules)-i)
				break
			}
			fmt.Fprintln(stdout, " ", r)
		}
	}
	return nil
}

// writeTrace writes the recorded virtual timeline as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing.
func writeTrace(path string, rec *yafim.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := yafim.WriteChromeTrace(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJournalFile writes the recorded run as a JSONL event journal.
func writeJournalFile(path string, rec *yafim.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := yafim.WriteJournal(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonPass is one mining pass in the -json summary.
type jsonPass struct {
	K          int             `json:"k"`
	Candidates int             `json:"candidates"`
	Frequent   int             `json:"frequent"`
	VirtualNS  int64           `json:"virtual_ns"`
	Counters   *yafim.Counters `json:"counters,omitempty"`
}

// jsonSummary is the machine-readable run summary emitted by -json.
type jsonSummary struct {
	Engine   string          `json:"engine"`
	Support  float64         `json:"support"`
	Frequent int             `json:"frequent"`
	MaxK     int             `json:"max_k"`
	TotalNS  int64           `json:"total_virtual_ns"`
	Total    string          `json:"total_virtual"`
	Passes   []jsonPass      `json:"passes"`
	Counters *yafim.Counters `json:"counters,omitempty"`
}

func writeJSONSummary(w io.Writer, eng yafim.Engine, support float64,
	trace *yafim.Trace, rec *yafim.Recorder) error {
	s := jsonSummary{
		Engine:   eng.String(),
		Support:  support,
		Frequent: trace.Result.NumFrequent(),
		MaxK:     trace.Result.MaxK(),
		TotalNS:  int64(trace.TotalDuration()),
		Total:    trace.TotalDuration().Round(time.Microsecond).String(),
	}
	for _, p := range trace.Passes {
		jp := jsonPass{
			K: p.K, Candidates: p.Candidates, Frequent: p.Frequent,
			VirtualNS: int64(p.Duration),
		}
		if !p.Counters.IsZero() {
			c := p.Counters
			jp.Counters = &c
		}
		s.Passes = append(s.Passes, jp)
	}
	if rec != nil {
		c := rec.Counters()
		s.Counters = &c
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func printPasses(w io.Writer, trace *yafim.Trace) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pass\tcandidates\tfrequent\ttime")
	for _, p := range trace.Passes {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\n", p.K, p.Candidates, p.Frequent, p.Duration.Round(1e6))
	}
	tw.Flush()
}

func printDerived(w io.Writer, kind string, sets []yafim.SetCount, top int) {
	fmt.Fprintf(w, "%s itemsets: %d\n", kind, len(sets))
	for i, sc := range sets {
		if i >= top {
			fmt.Fprintf(w, "  ... %d more\n", len(sets)-i)
			break
		}
		fmt.Fprintf(w, "  %v  sup=%d\n", sc.Set, sc.Count)
	}
}

func printItemsets(w io.Writer, res *yafim.Result, top int) {
	printed := 0
	for k := res.MaxK(); k >= 1 && printed < top; k-- {
		for _, sc := range res.Frequent(k) {
			if printed >= top {
				break
			}
			fmt.Fprintf(w, "  %v  sup=%d\n", sc.Set, sc.Count)
			printed++
		}
	}
	if total := res.NumFrequent(); total > printed {
		fmt.Fprintf(w, "  ... %d more (largest first)\n", total-printed)
	}
}

// runDistWorker joins the given master and serves until SIGINT/SIGTERM,
// then drains gracefully (the in-flight task finishes and is reported).
// With -dist-chaos, every HTTP call the worker makes — master RPC and peer
// map-output fetches alike — runs through the seeded fault transport.
func runDistWorker(ctx context.Context, f cliFlags, stderr io.Writer) error {
	if f.distMaster == "" {
		return fmt.Errorf("-dist worker requires -dist-master http://host:port")
	}
	opts := yafim.DistWorkerOptions{MasterURL: f.distMaster}
	if f.distChaos != 0 {
		ct, err := yafim.NewDistChaosTransport(yafim.DefaultDistTransportPlan(f.distChaos), nil)
		if err != nil {
			return err
		}
		opts.Transport = ct
		fmt.Fprintf(stderr, "yafim: worker under chaos transport, seed %d\n", f.distChaos)
	}
	fmt.Fprintf(stderr, "yafim: worker joining %s\n", f.distMaster)
	return yafim.RunDistWorker(ctx, opts)
}

// distJournal opens the live protocol journal for a dist-mode run. The
// returned close runs on every exit path of the caller.
func distJournal(path string) (*yafim.LiveLog, func(), error) {
	if path == "" {
		return yafim.NewLiveLog(nil), func() {}, nil
	}
	jf, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("-journal: %w", err)
	}
	return yafim.NewLiveLog(jf), func() { jf.Close() }, nil
}

// runDistMaster serves the worker protocol on -dist-addr, waits for
// -dist-workers workers to register, then mines -input across them.
func runDistMaster(ctx context.Context, f cliFlags, stdout, stderr io.Writer) error {
	if f.input == "" {
		return fmt.Errorf("-dist master requires -input")
	}
	db, err := yafim.LoadFile(filepath.Base(f.input), f.input)
	if err != nil {
		return err
	}
	st := db.ComputeStats()
	fmt.Fprintf(stdout, "%s: %d transactions, %d items, avg length %.1f\n",
		f.input, st.NumTransactions, st.NumItems, st.AvgLength)

	log, closeJournal, err := distJournal(f.journal)
	if err != nil {
		return err
	}
	defer closeJournal()
	if f.distResume && f.distWAL == "" {
		return fmt.Errorf("-dist-resume requires -dist-wal")
	}
	tuning := yafim.DefaultDistTuning()
	if f.distCacheB != 0 {
		tuning.InputCacheBytes = f.distCacheB
	}
	master, err := yafim.StartDistMaster(yafim.DistMasterOptions{
		Addr: f.distAddr, Tuning: tuning,
		Log: log, Reg: yafim.NewMetricsRegistry(),
		JournalPath: f.distWAL, Resume: f.distResume,
	})
	if err != nil {
		return err
	}
	defer master.Close()
	if f.distWAL != "" {
		mode := "journaling to"
		if f.distResume {
			mode = "resumed from"
		}
		fmt.Fprintf(stderr, "yafim: master %s %s\n", mode, f.distWAL)
	}
	fmt.Fprintf(stderr, "yafim: master serving worker protocol on %s (journal: /dist/events, metrics: /metrics)\n", master.URL())
	fmt.Fprintf(stderr, "yafim: waiting for %d worker(s); start them with: yafim -dist worker -dist-master %s\n",
		f.distWorkers, master.URL())
	if err := waitWorkers(ctx, master, f.distWorkers, 0); err != nil {
		return err
	}

	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	trace, err := yafim.MineDistributed(ctx, master, f.input, f.support, yafim.Options{MaxK: f.maxK})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "engine=dist-mapreduce support=%g%% frequent=%d maxk=%d time=%v workers=%d\n",
		f.support*100, trace.Result.NumFrequent(), trace.Result.MaxK(),
		trace.TotalDuration().Round(1e6), master.LiveWorkers())
	return report(stdout, f, trace, db)
}

// waitWorkers polls until at least n workers are registered and alive.
// A zero deadline waits until ctx is canceled.
func waitWorkers(ctx context.Context, master *yafim.DistMaster, n int, deadline time.Duration) error {
	var expire <-chan time.Time
	if deadline > 0 {
		timer := time.NewTimer(deadline)
		defer timer.Stop()
		expire = timer.C
	}
	for master.LiveWorkers() < n {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-expire:
			return fmt.Errorf("only %d of %d workers registered in %v", master.LiveWorkers(), n, deadline)
		case <-time.After(50 * time.Millisecond):
		}
	}
	return nil
}

// runDistSmoke is the self-contained distributed demo and CI gate: fork
// real worker processes, SIGKILL one the moment tasks start completing,
// and verify the surviving run's itemsets match the in-memory sim oracle
// byte for byte.
func runDistSmoke(ctx context.Context, f cliFlags, stdout, stderr io.Writer) error {
	logsDir := f.distLogs
	if logsDir == "" {
		var err error
		if logsDir, err = os.MkdirTemp("", "yafim-dist-smoke-"); err != nil {
			return err
		}
	} else if err := os.MkdirAll(logsDir, 0o755); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "yafim: smoke logs under %s\n", logsDir)

	// The workload: the named input file, or a generated slice of the
	// paper's MushRoom benchmark (dense, several candidate levels deep —
	// plenty of passes for the kill to land mid-run).
	input, support := f.input, f.support
	if input == "" {
		if !f.supportSet {
			support = 0.35 // the paper's MushRoom threshold
		}
		db, err := yafim.GenDataset("MushRoom", 0.05, 2014)
		if err != nil {
			return err
		}
		input = filepath.Join(logsDir, "mushroom.dat")
		if err := yafim.SaveFile(db, input); err != nil {
			return err
		}
	}
	db, err := yafim.LoadFile(filepath.Base(input), input)
	if err != nil {
		return err
	}

	// The oracle: same dataset and support on the in-memory sim.
	oracle, err := yafim.MineContext(ctx, db, support, yafim.Options{
		Engine: yafim.EngineMapReduce, MaxK: f.maxK,
	})
	if err != nil {
		return fmt.Errorf("sim oracle: %w", err)
	}

	log, closeJournal, err := distJournal(filepath.Join(logsDir, "master-journal.jsonl"))
	if err != nil {
		return err
	}
	defer closeJournal()
	tuning := yafim.DistTuning{
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  time.Second,
		LeaseDeadline:     60 * time.Second,
		InputCacheBytes:   f.distCacheB,
	}
	wal := f.distWAL
	if wal == "" {
		wal = filepath.Join(logsDir, "master.wal")
	}
	master, err := yafim.StartDistMaster(yafim.DistMasterOptions{
		Addr: "127.0.0.1:0", Tuning: tuning,
		Log: log, Reg: yafim.NewMetricsRegistry(), JournalPath: wal,
	})
	if err != nil {
		return err
	}
	defer master.Close()

	if f.distWorkers < 2 && f.distKill {
		return fmt.Errorf("-dist smoke needs -dist-workers >= 2 to survive a kill")
	}
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	workers := make([]*osexec.Cmd, 0, f.distWorkers)
	logFiles := make([]*os.File, 0, f.distWorkers)
	defer func() {
		// Every exit path reaps every child: TERM first (graceful drain),
		// KILL whatever ignores it.
		for _, w := range workers {
			if w.ProcessState == nil {
				w.Process.Signal(syscall.SIGTERM) //nolint:errcheck
			}
		}
		for _, w := range workers {
			if w.ProcessState == nil {
				done := make(chan struct{})
				go func(c *osexec.Cmd) { c.Wait(); close(done) }(w) //nolint:errcheck
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					w.Process.Kill() //nolint:errcheck
					<-done
				}
			}
		}
		for _, lf := range logFiles {
			lf.Close()
		}
	}()
	for i := 0; i < f.distWorkers; i++ {
		lf, err := os.Create(filepath.Join(logsDir, fmt.Sprintf("worker-%d.log", i)))
		if err != nil {
			return err
		}
		logFiles = append(logFiles, lf)
		wargs := []string{"-dist", "worker", "-dist-master", master.URL()}
		if f.distChaos != 0 {
			// Each worker gets its own seed so their fault schedules differ;
			// parity against the oracle must hold under all of them at once.
			wargs = append(wargs, "-dist-chaos", fmt.Sprint(f.distChaos+int64(i)))
		}
		cmd := osexec.Command(exe, wargs...)
		// The re-exec gate: a test binary hosting this code routes the
		// child into run() when it sees this variable; the real yafim
		// binary just parses the args.
		cmd.Env = append(os.Environ(), "YAFIM_CLI_REEXEC=1")
		cmd.Stdout = lf
		cmd.Stderr = lf
		if err := cmd.Start(); err != nil {
			return err
		}
		workers = append(workers, cmd)
	}
	if err := waitWorkers(ctx, master, f.distWorkers, 30*time.Second); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "yafim: %d workers up, mining %s at support %g\n",
		f.distWorkers, filepath.Base(input), support)

	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}

	// The assassin: at the first completed task, SIGKILL worker 0 — no
	// drain, no deregistration; its map outputs die with it.
	killed := make(chan struct{})
	if f.distKill {
		go func() {
			defer close(killed)
			for {
				select {
				case <-ctx.Done():
					return
				case <-time.After(5 * time.Millisecond):
				}
				for _, ev := range log.Events() {
					if ev.Event == "task_complete" {
						workers[0].Process.Kill() //nolint:errcheck
						fmt.Fprintf(stderr, "yafim: SIGKILLed worker pid %d mid-run\n", workers[0].Process.Pid)
						return
					}
				}
			}
		}()
	}

	trace, err := yafim.MineDistributed(ctx, master, input, support, yafim.Options{MaxK: f.maxK})
	if err != nil {
		return fmt.Errorf("distributed run: %w (worker logs under %s)", err, logsDir)
	}

	if !trace.Result.Equal(oracle.Result) {
		return fmt.Errorf("dist-smoke: PARITY FAILED — distributed itemsets diverge from the sim oracle (%d vs %d frequent; logs under %s)",
			trace.Result.NumFrequent(), oracle.Result.NumFrequent(), logsDir)
	}
	if err := verifyCacheCounters(master.URL(), logsDir, log, len(trace.Passes), f.distCacheB, stderr); err != nil {
		return err
	}
	killNote := "no worker killed"
	if f.distKill {
		select {
		case <-killed:
			killNote = "1 worker SIGKILLed mid-run"
		default:
			return fmt.Errorf("dist-smoke: run finished before any task completion was observed; kill never fired")
		}
	}
	if f.distChaos != 0 {
		killNote += fmt.Sprintf(", chaos transport seed %d", f.distChaos)
	}
	fmt.Fprintf(stdout, "dist-smoke: PARITY OK — %d frequent itemsets (maxk=%d) across %d workers, %s\n",
		oracle.Result.NumFrequent(), oracle.Result.MaxK(), f.distWorkers, killNote)
	fmt.Fprintf(stdout, "engine=dist-mapreduce support=%g%% frequent=%d maxk=%d time=%v\n",
		support*100, trace.Result.NumFrequent(), trace.Result.MaxK(),
		trace.TotalDuration().Round(1e6))
	return nil
}

// verifyCacheCounters fetches the master's /metrics after a smoke run, saves
// the dump next to the worker logs (CI uploads it on failure), and asserts
// the block-cache invariant the tentpole fix exists for: with caching on at
// default budget, the input is parsed from disk at most once per worker
// incarnation per split — never once per pass — and any multi-pass run must
// have been served hits from the cache. cacheBytes is the -dist-cache-bytes
// override; a non-default budget can legitimately evict, so only the dump is
// written then.
func verifyCacheCounters(masterURL, logsDir string, log *yafim.LiveLog,
	passes int, cacheBytes int64, stderr io.Writer) error {
	res, err := http.Get(masterURL + "/metrics")
	if err != nil {
		return fmt.Errorf("dist-smoke: fetch /metrics: %w", err)
	}
	dump, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		return fmt.Errorf("dist-smoke: read /metrics: %w", err)
	}
	dumpPath := filepath.Join(logsDir, "cache-metrics.prom")
	if err := os.WriteFile(dumpPath, dump, 0o644); err != nil {
		return err
	}

	// One registration = one worker incarnation = one cold cache; one
	// job_start Detail names the split count. Both come from the live
	// protocol journal the smoke run already keeps.
	registrations, maxMaps := 0, 0
	for _, ev := range log.Events() {
		switch ev.Event {
		case "worker_register":
			registrations++
		case "job_start":
			var m, r int
			if _, err := fmt.Sscanf(ev.Detail, "%d maps, %d reduces", &m, &r); err == nil && m > maxMaps {
				maxMaps = m
			}
		}
	}
	reads, ok := metricValue(string(dump), "dist_input_reads_total")
	if !ok {
		return fmt.Errorf("dist-smoke: dist_input_reads_total missing from /metrics (dump: %s)", dumpPath)
	}
	hits, _ := metricValue(string(dump), "dist_input_cache_hits_total")
	if cacheBytes != 0 {
		fmt.Fprintf(stderr, "yafim: cache counters recorded (custom budget, invariant not asserted): %v reads, %v hits (dump: %s)\n",
			reads, hits, dumpPath)
		return nil
	}
	if limit := float64(registrations * maxMaps); reads > limit || registrations == 0 || maxMaps == 0 {
		return fmt.Errorf("dist-smoke: CACHE INVARIANT FAILED — %v disk reads across %d worker registration(s) x %d splits (limit %v): the input was re-read across passes (dump: %s)",
			reads, registrations, maxMaps, registrations*maxMaps, dumpPath)
	}
	if passes >= 2 && hits <= 0 {
		return fmt.Errorf("dist-smoke: CACHE INVARIANT FAILED — %d passes ran with zero block-cache hits (dump: %s)",
			passes, dumpPath)
	}
	fmt.Fprintf(stderr, "yafim: cache counters OK — %v disk reads (<= %d registrations x %d splits), %v hits over %d passes (dump: %s)\n",
		reads, registrations, maxMaps, hits, passes, dumpPath)
	return nil
}

// metricValue extracts an un-labelled metric's value from a Prometheus text
// dump.
func metricValue(dump, name string) (float64, bool) {
	for _, line := range strings.Split(dump, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err == nil {
				return v, true
			}
		}
	}
	return 0, false
}
