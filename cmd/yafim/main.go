// Command yafim mines frequent itemsets from a transaction file with any of
// the repository's engines and optionally derives association rules.
//
// Usage:
//
//	yafim -input retail.dat -support 0.01 [-engine yafim] [-rules 0.8]
//	yafim -input retail.dat -trace out.json -stats
//
// The parallel engines (yafim, mapreduce) run on the paper's simulated
// 12-node cluster and report per-pass virtual cluster time; the sequential
// engines (sequential, eclat, fpgrowth) report real elapsed time.
//
// Observability flags (parallel engines): -trace writes a Chrome trace-event
// JSON of the run's virtual timeline (load it in Perfetto or
// chrome://tracing), -stats prints a Spark-Web-UI-style per-stage skew table
// plus the counter totals, and -json emits a machine-readable run summary.
// -diag prints the critical-path and skew diagnosis (straggler attribution,
// per-stage Gini, hot partitions), -journal writes a JSONL event journal of
// the virtual timeline, and -listen serves the live run over HTTP: Prometheus
// text at /metrics, the diagnosis at /diag and /diag.json, the journal at
// /journal, and net/http/pprof under /debug/pprof/.
//
// Runs are interruptible: -timeout bounds the real (wall-clock) time of the
// mining run, and Ctrl-C (SIGINT) or SIGTERM cancels it at the next task
// boundary. Either way the process exits cleanly — and if -trace or -stats
// was requested, the telemetry recorded up to the cancellation point is
// still written, so a partial timeline of an aborted run remains inspectable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"text/tabwriter"
	"time"

	"yafim"
)

func main() {
	// SIGINT/SIGTERM cancel the mining context; a second signal kills the
	// process immediately (NotifyContext restores default handling once the
	// context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if errors.Is(err, yafim.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "yafim: interrupted:", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "yafim:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		input    = flag.String("input", "", "transaction file in .dat format (required)")
		support  = flag.Float64("support", 0.01, "relative minimum support in (0,1]")
		engine   = flag.String("engine", "yafim", "engine: yafim, mapreduce, sequential, eclat, fpgrowth, son, dhp, partition, toivonen, disteclat, aprioritid")
		mode     = flag.String("mode", "all", "itemsets to report: all, closed, maximal")
		maxK     = flag.Int("maxk", 0, "stop after frequent itemsets of this size (0 = unbounded)")
		nodes    = flag.Int("nodes", 0, "override simulated node count for parallel engines")
		ruleConf = flag.Float64("rules", 0, "if > 0, derive association rules at this confidence")
		top      = flag.Int("top", 20, "itemsets/rules to print per section")
		quiet    = flag.Bool("q", false, "print only summary lines")
		traceOut = flag.String("trace", "", "write Chrome trace-event JSON of the virtual timeline to this file")
		stats    = flag.Bool("stats", false, "print per-stage skew table and counter totals")
		chaosS   = flag.Int64("chaos", 0, "if != 0, inject the seeded chaos fault plan into parallel engines")
		jsonOut  = flag.Bool("json", false, "print a machine-readable JSON run summary instead of text")
		timeout  = flag.Duration("timeout", 0, "abort the mining run after this much real time (0 = no limit)")
		listen   = flag.String("listen", "", "serve /metrics, /diag, /journal and /debug/pprof/ on this address while the run executes")
		journal  = flag.String("journal", "", "write a JSONL event journal of the run's virtual timeline to this file")
		diag     = flag.Bool("diag", false, "print the critical-path and skew diagnosis after the run")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		return fmt.Errorf("-input is required")
	}
	eng, err := yafim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	db, err := yafim.LoadFile(filepath.Base(*input), *input)
	if err != nil {
		return err
	}
	st := db.ComputeStats()
	if !*jsonOut {
		fmt.Printf("%s: %d transactions, %d items, avg length %.1f\n",
			*input, st.NumTransactions, st.NumItems, st.AvgLength)
	}

	opts := yafim.Options{Engine: eng, MaxK: *maxK, Deadline: *timeout}
	if *traceOut != "" || *stats || *jsonOut || *listen != "" || *journal != "" || *diag {
		opts.Recorder = yafim.NewRecorder()
	}
	if *chaosS != 0 {
		opts.Chaos = yafim.DefaultChaosPlan(*chaosS)
	}
	if *nodes > 0 {
		cfg := yafim.ClusterSpark()
		if eng == yafim.EngineMapReduce {
			cfg = yafim.ClusterHadoop()
		}
		cfg = cfg.WithNodes(*nodes)
		opts.Cluster = &cfg
	}
	// The cluster the diagnosis should judge task durations against: the
	// explicit override when given, otherwise the engine's default.
	diagCluster := opts.Cluster
	if diagCluster == nil {
		switch eng {
		case yafim.EngineYAFIM:
			c := yafim.ClusterSpark()
			diagCluster = &c
		case yafim.EngineMapReduce:
			c := yafim.ClusterHadoop()
			diagCluster = &c
		}
	}
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return fmt.Errorf("-listen: %w", err)
		}
		fmt.Fprintf(os.Stderr, "yafim: serving diagnostics on http://%s/\n", ln.Addr())
		srv := &http.Server{Handler: yafim.ObsHandler(opts.Recorder, diagCluster)}
		go srv.Serve(ln)
		defer srv.Close()
	}

	trace, err := yafim.MineContext(ctx, db, *support, opts)
	if err != nil {
		// A canceled or timed-out run still flushes the telemetry captured so
		// far: the partial timeline is exactly what explains where the time
		// went before the abort.
		if yafim.IsCancellation(err) && opts.Recorder != nil {
			if *traceOut != "" {
				if werr := writeTrace(*traceOut, opts.Recorder); werr != nil {
					fmt.Fprintln(os.Stderr, "yafim: partial trace:", werr)
				} else {
					fmt.Fprintln(os.Stderr, "yafim: partial trace written to", *traceOut)
				}
			}
			if *stats {
				if werr := yafim.WriteStageTable(os.Stderr, opts.Recorder); werr != nil {
					fmt.Fprintln(os.Stderr, "yafim: partial stage table:", werr)
				}
			}
			if *journal != "" {
				if werr := writeJournalFile(*journal, opts.Recorder); werr != nil {
					fmt.Fprintln(os.Stderr, "yafim: partial journal:", werr)
				} else {
					fmt.Fprintln(os.Stderr, "yafim: partial journal written to", *journal)
				}
			}
			if *diag {
				if werr := yafim.WriteDiagnosis(os.Stderr, yafim.Diagnose(opts.Recorder, diagCluster)); werr != nil {
					fmt.Fprintln(os.Stderr, "yafim: partial diagnosis:", werr)
				}
			}
		}
		return err
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, opts.Recorder); err != nil {
			return err
		}
	}
	if *journal != "" {
		if err := writeJournalFile(*journal, opts.Recorder); err != nil {
			return err
		}
	}
	if *jsonOut {
		if *diag {
			if err := yafim.WriteDiagnosis(os.Stderr, yafim.Diagnose(opts.Recorder, diagCluster)); err != nil {
				return err
			}
		}
		return writeJSONSummary(os.Stdout, eng, *support, trace, opts.Recorder)
	}

	fmt.Printf("engine=%s support=%g%% frequent=%d maxk=%d time=%v\n",
		eng, *support*100, trace.Result.NumFrequent(), trace.Result.MaxK(),
		trace.TotalDuration().Round(1e6))
	if *stats {
		if err := yafim.WriteStageTable(os.Stdout, opts.Recorder); err != nil {
			return err
		}
		fmt.Println("counters:")
		if err := yafim.WriteCounters(os.Stdout, opts.Recorder.Counters()); err != nil {
			return err
		}
	}
	if *diag {
		if err := yafim.WriteDiagnosis(os.Stdout, yafim.Diagnose(opts.Recorder, diagCluster)); err != nil {
			return err
		}
	}
	if !*quiet {
		printPasses(trace)
		switch *mode {
		case "all":
			printItemsets(trace.Result, *top)
		case "closed":
			printDerived("closed", trace.Result.Closed(), *top)
		case "maximal":
			printDerived("maximal", trace.Result.Maximal(), *top)
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
	}
	if *ruleConf > 0 {
		rules, err := yafim.GenerateRules(trace.Result, *ruleConf, db.Len())
		if err != nil {
			return err
		}
		fmt.Printf("rules (confidence >= %g): %d\n", *ruleConf, len(rules))
		for i, r := range rules {
			if i >= *top {
				fmt.Printf("  ... %d more\n", len(rules)-i)
				break
			}
			fmt.Println(" ", r)
		}
	}
	return nil
}

// writeTrace writes the recorded virtual timeline as Chrome trace-event
// JSON, loadable in Perfetto or chrome://tracing.
func writeTrace(path string, rec *yafim.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := yafim.WriteChromeTrace(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJournalFile writes the recorded run as a JSONL event journal.
func writeJournalFile(path string, rec *yafim.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := yafim.WriteJournal(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonPass is one mining pass in the -json summary.
type jsonPass struct {
	K          int             `json:"k"`
	Candidates int             `json:"candidates"`
	Frequent   int             `json:"frequent"`
	VirtualNS  int64           `json:"virtual_ns"`
	Counters   *yafim.Counters `json:"counters,omitempty"`
}

// jsonSummary is the machine-readable run summary emitted by -json.
type jsonSummary struct {
	Engine   string          `json:"engine"`
	Support  float64         `json:"support"`
	Frequent int             `json:"frequent"`
	MaxK     int             `json:"max_k"`
	TotalNS  int64           `json:"total_virtual_ns"`
	Total    string          `json:"total_virtual"`
	Passes   []jsonPass      `json:"passes"`
	Counters *yafim.Counters `json:"counters,omitempty"`
}

func writeJSONSummary(w *os.File, eng yafim.Engine, support float64,
	trace *yafim.Trace, rec *yafim.Recorder) error {
	s := jsonSummary{
		Engine:   eng.String(),
		Support:  support,
		Frequent: trace.Result.NumFrequent(),
		MaxK:     trace.Result.MaxK(),
		TotalNS:  int64(trace.TotalDuration()),
		Total:    trace.TotalDuration().Round(time.Microsecond).String(),
	}
	for _, p := range trace.Passes {
		jp := jsonPass{
			K: p.K, Candidates: p.Candidates, Frequent: p.Frequent,
			VirtualNS: int64(p.Duration),
		}
		if !p.Counters.IsZero() {
			c := p.Counters
			jp.Counters = &c
		}
		s.Passes = append(s.Passes, jp)
	}
	if rec != nil {
		c := rec.Counters()
		s.Counters = &c
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func printPasses(trace *yafim.Trace) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pass\tcandidates\tfrequent\ttime")
	for _, p := range trace.Passes {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\n", p.K, p.Candidates, p.Frequent, p.Duration.Round(1e6))
	}
	tw.Flush()
}

func printDerived(kind string, sets []yafim.SetCount, top int) {
	fmt.Printf("%s itemsets: %d\n", kind, len(sets))
	for i, sc := range sets {
		if i >= top {
			fmt.Printf("  ... %d more\n", len(sets)-i)
			break
		}
		fmt.Printf("  %v  sup=%d\n", sc.Set, sc.Count)
	}
}

func printItemsets(res *yafim.Result, top int) {
	printed := 0
	for k := res.MaxK(); k >= 1 && printed < top; k-- {
		for _, sc := range res.Frequent(k) {
			if printed >= top {
				break
			}
			fmt.Printf("  %v  sup=%d\n", sc.Set, sc.Count)
			printed++
		}
	}
	if total := res.NumFrequent(); total > printed {
		fmt.Printf("  ... %d more (largest first)\n", total-printed)
	}
}
