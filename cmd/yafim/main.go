// Command yafim mines frequent itemsets from a transaction file with any of
// the repository's engines and optionally derives association rules.
//
// Usage:
//
//	yafim -input retail.dat -support 0.01 [-engine yafim] [-rules 0.8]
//
// The parallel engines (yafim, mapreduce) run on the paper's simulated
// 12-node cluster and report per-pass virtual cluster time; the sequential
// engines (sequential, eclat, fpgrowth) report real elapsed time.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	"yafim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "yafim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		input    = flag.String("input", "", "transaction file in .dat format (required)")
		support  = flag.Float64("support", 0.01, "relative minimum support in (0,1]")
		engine   = flag.String("engine", "yafim", "engine: yafim, mapreduce, sequential, eclat, fpgrowth, son, dhp, partition, toivonen, disteclat, aprioritid")
		mode     = flag.String("mode", "all", "itemsets to report: all, closed, maximal")
		maxK     = flag.Int("maxk", 0, "stop after frequent itemsets of this size (0 = unbounded)")
		nodes    = flag.Int("nodes", 0, "override simulated node count for parallel engines")
		ruleConf = flag.Float64("rules", 0, "if > 0, derive association rules at this confidence")
		top      = flag.Int("top", 20, "itemsets/rules to print per section")
		quiet    = flag.Bool("q", false, "print only summary lines")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		return fmt.Errorf("-input is required")
	}
	eng, err := yafim.ParseEngine(*engine)
	if err != nil {
		return err
	}
	db, err := yafim.LoadFile(filepath.Base(*input), *input)
	if err != nil {
		return err
	}
	st := db.ComputeStats()
	fmt.Printf("%s: %d transactions, %d items, avg length %.1f\n",
		*input, st.NumTransactions, st.NumItems, st.AvgLength)

	opts := yafim.Options{Engine: eng, MaxK: *maxK}
	if *nodes > 0 {
		cfg := yafim.ClusterSpark()
		if eng == yafim.EngineMapReduce {
			cfg = yafim.ClusterHadoop()
		}
		cfg = cfg.WithNodes(*nodes)
		opts.Cluster = &cfg
	}
	trace, err := yafim.Mine(db, *support, opts)
	if err != nil {
		return err
	}

	fmt.Printf("engine=%s support=%g%% frequent=%d maxk=%d time=%v\n",
		eng, *support*100, trace.Result.NumFrequent(), trace.Result.MaxK(),
		trace.TotalDuration().Round(1e6))
	if !*quiet {
		printPasses(trace)
		switch *mode {
		case "all":
			printItemsets(trace.Result, *top)
		case "closed":
			printDerived("closed", trace.Result.Closed(), *top)
		case "maximal":
			printDerived("maximal", trace.Result.Maximal(), *top)
		default:
			return fmt.Errorf("unknown mode %q", *mode)
		}
	}
	if *ruleConf > 0 {
		rules, err := yafim.GenerateRules(trace.Result, *ruleConf, db.Len())
		if err != nil {
			return err
		}
		fmt.Printf("rules (confidence >= %g): %d\n", *ruleConf, len(rules))
		for i, r := range rules {
			if i >= *top {
				fmt.Printf("  ... %d more\n", len(rules)-i)
				break
			}
			fmt.Println(" ", r)
		}
	}
	return nil
}

func printPasses(trace *yafim.Trace) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pass\tcandidates\tfrequent\ttime")
	for _, p := range trace.Passes {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%v\n", p.K, p.Candidates, p.Frequent, p.Duration.Round(1e6))
	}
	tw.Flush()
}

func printDerived(kind string, sets []yafim.SetCount, top int) {
	fmt.Printf("%s itemsets: %d\n", kind, len(sets))
	for i, sc := range sets {
		if i >= top {
			fmt.Printf("  ... %d more\n", len(sets)-i)
			break
		}
		fmt.Printf("  %v  sup=%d\n", sc.Set, sc.Count)
	}
}

func printItemsets(res *yafim.Result, top int) {
	printed := 0
	for k := res.MaxK(); k >= 1 && printed < top; k-- {
		for _, sc := range res.Frequent(k) {
			if printed >= top {
				break
			}
			fmt.Printf("  %v  sup=%d\n", sc.Set, sc.Count)
			printed++
		}
	}
	if total := res.NumFrequent(); total > printed {
		fmt.Printf("  ... %d more (largest first)\n", total-printed)
	}
}
