// Command benchjson converts `go test -bench -benchmem` output into a
// stable JSON document, and compares two such documents as a regression
// gate.
//
// Writer mode (default) reads benchmark output on stdin and prints JSON:
//
//	go test -run '^$' -bench Pass2 -benchmem . | go run ./cmd/benchjson > BENCH.json
//
// Check mode compares a committed baseline against a fresh run and exits
// nonzero when a gated metric regressed beyond the tolerance:
//
//	go run ./cmd/benchjson -check BENCH_9.json bench-current.json
//
// Only machine-independent metrics gate: B/op (real allocation rate of the
// counting kernels) and every custom metric containing "virt-sec" (the
// simulated cluster time, which is deterministic) or "resident-bytes" (the
// shuffle lifecycle manager's deterministic peak/final spill residency).
// ns/op depends on the CI host and is recorded but never gated; allocs/op
// is recorded for the trajectory and gated alongside B/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the document layout for future readers of the
// committed BENCH_*.json trajectory points.
const Schema = "yafim-bench/v1"

// Benchmark is one parsed benchmark line. Metrics holds every
// "value unit" pair after the iteration count: ns/op, B/op, allocs/op,
// and any b.ReportMetric customs.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	check := flag.Bool("check", false,
		"compare two JSON files (baseline, current) instead of parsing stdin")
	tolerance := flag.Float64("tolerance", 0.20,
		"allowed fractional increase of a gated metric before failing")
	flag.Parse()

	if *check {
		if flag.NArg() != 2 {
			fatalf("usage: benchjson -check [-tolerance 0.20] baseline.json current.json")
		}
		base, err := load(flag.Arg(0))
		if err != nil {
			fatalf("baseline: %v", err)
		}
		cur, err := load(flag.Arg(1))
		if err != nil {
			fatalf("current: %v", err)
		}
		if failures := compare(base, cur, *tolerance); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "REGRESSION:", f)
			}
			os.Exit(1)
		}
		fmt.Printf("benchjson: %d benchmarks within %.0f%% of baseline %s\n",
			len(base.Benchmarks), *tolerance*100, flag.Arg(0))
		return
	}

	doc, err := parse(os.Stdin)
	if err != nil {
		fatalf("%v", err)
	}
	if len(doc.Benchmarks) == 0 {
		fatalf("no benchmark lines found on stdin")
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatalf("%v", err)
	}
}

// parse reads `go test -bench` text output. Benchmark lines look like:
//
//	BenchmarkPass2KernelHashTree-16    12   9512345 ns/op   1.25 virt-sec   512 B/op   3 allocs/op
//
// The trailing -N is the GOMAXPROCS suffix and is stripped so baselines
// transfer between machines with different core counts.
func parse(r *os.File) (*Doc, error) {
	doc := &Doc{
		Schema:    Schema,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then pairs of value/unit.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       stripProcs(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

// stripProcs removes the trailing -GOMAXPROCS suffix of a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

// gated reports whether a metric participates in the regression gate.
// Wall-clock rates (ns/op, MB/s) vary with the host and are excluded.
func gated(unit string) bool {
	switch {
	case unit == "B/op", unit == "allocs/op":
		return true
	case strings.Contains(unit, "virt-sec"):
		return true
	case strings.Contains(unit, "resident-bytes"):
		// Deterministic virtual quantity like virt-sec: peak shuffle spill
		// held in executor memory must not creep back up.
		return true
	}
	return false
}

// compare returns one message per gated regression. Every baseline
// benchmark must still exist in the current run — a vanished benchmark is
// a silent gate bypass, so it fails too.
func compare(base, cur *Doc, tolerance float64) []string {
	curByName := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		curByName[b.Name] = b
	}
	var failures []string
	for _, b := range base.Benchmarks {
		c, ok := curByName[b.Name]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s: present in baseline but missing from current run", b.Name))
			continue
		}
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			if !gated(unit) {
				continue
			}
			want := b.Metrics[unit]
			got, ok := c.Metrics[unit]
			if !ok {
				failures = append(failures,
					fmt.Sprintf("%s: metric %s missing from current run", b.Name, unit))
				continue
			}
			// One absolute unit of slack on top of the fractional tolerance:
			// tiny integer metrics (an allocs/op of 4 whose pool warm-up
			// sometimes lands on 5) would otherwise flake the gate, while a
			// single unit is far below noise for every metric large enough
			// to regress meaningfully. It also covers the zero baseline,
			// which cannot scale by a tolerance.
			limit := want*(1+tolerance) + 1
			if got > limit {
				failures = append(failures, fmt.Sprintf(
					"%s: %s grew %.4g -> %.4g (limit %.4g at %.0f%% tolerance)",
					b.Name, unit, want, got, limit, tolerance*100))
			}
		}
	}
	return failures
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}
