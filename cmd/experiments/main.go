// Command experiments regenerates the paper's evaluation: Table I and
// Figures 3-6, the headline average-speedup summary, and the §IV design
// ablations. Every experiment verifies that YAFIM and the MapReduce
// implementation find identical frequent itemsets before reporting timings.
//
// Usage:
//
//	experiments -exp all              # everything, paper-scale datasets
//	experiments -exp fig3 -dataset Chess
//	experiments -exp fig5 -scale 0.2  # quicker, scaled-down datasets
//	experiments -exp obs -dataset Chess -tracedir traces
//
// The obs experiment runs each benchmark once per parallel engine with a
// telemetry recorder attached, prints the per-stage skew table and counter
// totals, and (with -tracedir) writes a Chrome trace-event JSON file per run.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"yafim/internal/chaos"
	"yafim/internal/exec"
	"yafim/internal/experiments"
	"yafim/internal/obs"
)

func main() {
	// SIGINT/SIGTERM cancel the context; the running experiment stops at its
	// next task boundary and the error propagates back here. A second signal
	// kills the process immediately (signal.NotifyContext restores default
	// handling once the context is done).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		if exec.IsCancellation(err) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted:", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	var (
		exp       = flag.String("exp", "all", "table1, fig3, fig4, fig5, fig6, summary, variants, matrix, ablations, check, obs, chaos, diag, or all")
		ds        = flag.String("dataset", "", "restrict fig3/fig4/fig5 to one dataset")
		scale     = flag.Float64("scale", 1.0, "dataset scale (1.0 = paper size)")
		seed      = flag.Int64("seed", 2014, "data generation seed")
		maxRepl   = flag.Int("maxrepl", 6, "fig4: largest replication factor")
		tasks     = flag.Int("tasks", 0, "task-granularity hint (0 = 2x cluster cores)")
		chart     = flag.Bool("chart", false, "also render each figure as an ASCII chart")
		csvDir    = flag.String("csvdir", "", "also write each figure's series as CSV files here")
		traceDir  = flag.String("tracedir", "", "obs: write each instrumented run's Chrome trace JSON here")
		chaosSeed = flag.Int64("chaosseed", 7, "chaos: fault-plan seed (identical seeds reproduce identical runs)")
		crashFrac = flag.Float64("crashfrac", 0.4, "chaos: crash a node at this fraction of the fault-free run (0 = no crash)")
		diagChaos = flag.Bool("diagchaos", false, "diag: inject a seeded node straggler so the diagnosis has environment stragglers to attribute")
		listen    = flag.String("listen", "", "serve the in-flight run's /metrics, /diag, /journal and /debug/pprof/ on this address")
	)
	flag.Parse()

	env := experiments.DefaultEnv()
	env.Scale = *scale
	env.Seed = *seed
	env.Tasks = *tasks

	benches := experiments.PaperBenchmarks()
	if *ds != "" {
		b, err := experiments.FindBenchmark(*ds)
		if err != nil {
			return err
		}
		benches = []experiments.Benchmark{b}
	}

	// -listen exposes whichever instrumented run most recently started; the
	// atomic pointer lets diag runs swap recorders without restarting the
	// listener, and a scrape before the first run serves empty documents.
	var served atomic.Pointer[servedRun]
	onRecorder := func(engine string, rec *obs.Recorder) {
		cfg := env.Spark
		if engine == "mapreduce" {
			cfg = env.Hadoop
		}
		served.Store(&servedRun{rec: rec, opts: obs.AnalyzeOptions{Cluster: &cfg}})
	}
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return fmt.Errorf("-listen: %w", err)
		}
		fmt.Fprintf(os.Stderr, "experiments: serving diagnostics on http://%s/\n", ln.Addr())
		srv := &http.Server{Handler: obs.HandlerFunc(func() (*obs.Recorder, obs.AnalyzeOptions) {
			if s := served.Load(); s != nil {
				return s.rec, s.opts
			}
			return nil, obs.AnalyzeOptions{}
		})}
		go srv.Serve(ln)
		defer srv.Close()
	}

	start := time.Now()
	run := func(name string, fn func() error) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		fmt.Printf("=== %s ===\n", name)
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
		return nil
	}

	if err := run("table1", func() error {
		rows, err := experiments.RunTable1(env)
		if err != nil {
			return err
		}
		experiments.WriteTable1(os.Stdout, rows)
		return nil
	}); err != nil {
		return err
	}

	writeCSVFile := func(name string, write func(f *os.File) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	if err := run("fig3", func() error {
		for _, b := range benches {
			c, err := experiments.RunComparison(ctx, b, env)
			if err != nil {
				return err
			}
			experiments.WriteComparison(os.Stdout, c)
			if *chart {
				experiments.ComparisonChart(os.Stdout, c)
			}
			if err := writeCSVFile("fig3_"+b.Name+".csv", func(f *os.File) error {
				return experiments.ComparisonCSV(f, c)
			}); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}); err != nil {
		return err
	}

	if err := run("fig4", func() error {
		var reps []int
		for r := 1; r <= *maxRepl; r++ {
			reps = append(reps, r)
		}
		for _, b := range benches {
			s, err := experiments.RunSizeup(ctx, b, env, reps)
			if err != nil {
				return err
			}
			experiments.WriteSizeup(os.Stdout, s)
			if *chart {
				experiments.SizeupChart(os.Stdout, s)
			}
			if err := writeCSVFile("fig4_"+b.Name+".csv", func(f *os.File) error {
				return experiments.SizeupCSV(f, s)
			}); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}); err != nil {
		return err
	}

	if err := run("fig5", func() error {
		for _, b := range benches {
			s, err := experiments.RunSpeedup(ctx, b, env, []int{4, 6, 8, 10, 12}, 6)
			if err != nil {
				return err
			}
			experiments.WriteSpeedup(os.Stdout, s)
			if *chart {
				experiments.SpeedupChart(os.Stdout, s)
			}
			if err := writeCSVFile("fig5_"+b.Name+".csv", func(f *os.File) error {
				return experiments.SpeedupCSV(f, s)
			}); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}); err != nil {
		return err
	}

	if err := run("fig6", func() error {
		c, err := experiments.RunComparison(ctx, experiments.MedicalBenchmark(), env)
		if err != nil {
			return err
		}
		experiments.WriteComparison(os.Stdout, c)
		if *chart {
			experiments.ComparisonChart(os.Stdout, c)
		}
		return writeCSVFile("fig6_medical.csv", func(f *os.File) error {
			return experiments.ComparisonCSV(f, c)
		})
	}); err != nil {
		return err
	}

	if err := run("summary", func() error {
		s, err := experiments.RunSummary(ctx, env)
		if err != nil {
			return err
		}
		experiments.WriteSummary(os.Stdout, s)
		return writeCSVFile("summary.csv", func(f *os.File) error {
			return experiments.SummaryCSV(f, s)
		})
	}); err != nil {
		return err
	}

	if err := run("variants", func() error {
		for _, b := range benches {
			v, err := experiments.RunVariants(ctx, b, env)
			if err != nil {
				return err
			}
			experiments.WriteVariants(os.Stdout, v)
			fmt.Println()
		}
		return nil
	}); err != nil {
		return err
	}

	if err := run("matrix", func() error {
		// The engine matrix defaults to the candidate-heavy synthetic
		// benchmark, where the horizontal/vertical representation choice
		// matters most; -dataset widens it.
		matrixBenches := benches
		if *ds == "" {
			heavy, err := experiments.FindBenchmark("T10I4D100K")
			if err != nil {
				return err
			}
			matrixBenches = []experiments.Benchmark{heavy}
		}
		for _, b := range matrixBenches {
			m, err := experiments.RunMatrix(ctx, b, env, experiments.MatrixSupports(b))
			if err != nil {
				return err
			}
			experiments.WriteMatrix(os.Stdout, m)
			fmt.Println()
		}
		return nil
	}); err != nil {
		return err
	}

	if err := run("ablations", func() error {
		// Each design choice is measured where it matters: broadcast and the
		// hash tree on the candidate-heavy synthetic data, the RDD cache on
		// the largest input file.
		heavy, err := experiments.FindBenchmark("T10I4D100K")
		if err != nil {
			return err
		}
		big, err := experiments.FindBenchmark("Pumsb_star")
		if err != nil {
			return err
		}
		for _, a := range []struct {
			b  experiments.Benchmark
			fn func(context.Context, experiments.Benchmark, experiments.Env) (*experiments.Ablation, error)
		}{
			{heavy, experiments.RunBroadcastAblation},
			{big, experiments.RunCacheAblation},
			{heavy, experiments.RunHashTreeAblation},
		} {
			res, err := a.fn(ctx, a.b, env)
			if err != nil {
				return err
			}
			experiments.WriteAblation(os.Stdout, res)
		}
		return nil
	}); err != nil {
		return err
	}

	// obs is opt-in only (not part of "all"): it reruns benchmarks purely to
	// collect telemetry, which would double the cost of a full sweep.
	if *exp == "obs" {
		fmt.Println("=== obs: instrumented runs ===")
		for _, b := range benches {
			runs, err := experiments.RunObserved(ctx, b, env)
			if err != nil {
				return err
			}
			for _, r := range runs {
				fmt.Printf("--- %s / %s (virtual %v) ---\n",
					r.Dataset, r.Engine, r.Trace.TotalDuration().Round(time.Millisecond))
				if err := obs.WriteStageTable(os.Stdout, r.Recorder); err != nil {
					return err
				}
				fmt.Println("counters:")
				if err := obs.WriteCounters(os.Stdout, r.Recorder.Counters()); err != nil {
					return err
				}
				if *traceDir != "" {
					if err := writeTraceFile(*traceDir, r.Dataset+"_"+r.Engine+".trace.json", r.Recorder); err != nil {
						return err
					}
				}
			}
			fmt.Println()
		}
	}

	// chaos is opt-in only (not part of "all"): it runs every benchmark four
	// times (fault-free and chaotic, per engine) to measure recovery cost.
	if *exp == "chaos" {
		fmt.Println("=== chaos: seeded faults + mitigation ===")
		params := experiments.DefaultChaosParams(*chaosSeed)
		params.CrashFrac = *crashFrac
		for _, b := range benches {
			c, err := experiments.RunChaos(ctx, b, env, params)
			if err != nil {
				return err
			}
			experiments.WriteChaos(os.Stdout, c)
			fmt.Println()
		}
	}

	// diag is opt-in only (not part of "all"): it reruns each benchmark per
	// engine with full telemetry and prints the critical-path and skew
	// diagnosis. Every diagnosis is validated for internal consistency
	// (critical path sums to the makespan, bounded Gini and shares, known
	// straggler causes), so a malformed report fails the command — this is
	// what `make diag` gates on.
	if *exp == "diag" {
		fmt.Println("=== diag: critical path + skew analysis ===")
		var plan *chaos.Plan
		if *diagChaos {
			plan = &chaos.Plan{Seed: *chaosSeed,
				Stragglers: []chaos.Straggler{{Node: 1, Factor: 4}}}
			fmt.Printf("chaos: node 1 straggling at 4x (seed %d)\n", *chaosSeed)
		}
		for _, b := range benches {
			runs, err := experiments.RunDiagnosed(ctx, b, env, plan, onRecorder)
			if err != nil {
				return err
			}
			if err := experiments.WriteDiagTable(os.Stdout, runs); err != nil {
				return err
			}
			for _, r := range runs {
				fmt.Printf("--- %s / %s ---\n", r.Dataset, r.Engine)
				if err := obs.WriteDiagnosis(os.Stdout, r.Diagnosis); err != nil {
					return err
				}
			}
			fmt.Println()
		}
	}

	if *exp == "check" {
		fmt.Println("=== check: paper claims vs reproduction ===")
		checks, err := experiments.RunShapeChecks(ctx, env)
		if err != nil {
			return err
		}
		if failed := experiments.WriteChecks(os.Stdout, checks); failed > 0 {
			return fmt.Errorf("%d claims failed to reproduce", failed)
		}
		fmt.Println()
	}

	fmt.Printf("done in %v (real time)\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// servedRun is what the -listen HTTP surface currently exposes: the most
// recently started engine run's recorder and the cluster to analyze it
// against.
type servedRun struct {
	rec  *obs.Recorder
	opts obs.AnalyzeOptions
}

// writeTraceFile writes one instrumented run's Chrome trace-event JSON into
// dir, creating the directory if needed.
func writeTraceFile(dir, name string, rec *obs.Recorder) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
