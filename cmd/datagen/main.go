// Command datagen generates the paper's benchmark datasets (or custom IBM
// Quest-style synthetic data) as .dat transaction files.
//
// Usage:
//
//	datagen -dataset MushRoom -out mushroom.dat
//	datagen -dataset quest -items 1000 -transactions 50000 -avglen 12 -out t12.dat
package main

import (
	"flag"
	"fmt"
	"os"

	"yafim"
	"yafim/internal/datagen"
	"yafim/internal/itemset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name  = flag.String("dataset", "", "MushRoom, T10I4D100K, Chess, Pumsb_star, MedicalCases, Kosarak, Retail, or quest (required)")
		out   = flag.String("out", "", "output .dat path (required)")
		scale = flag.Float64("scale", 1.0, "transaction-count multiplier (1.0 = paper size)")
		seed  = flag.Int64("seed", 2014, "generator seed")

		// Custom Quest parameters (only with -dataset quest).
		items  = flag.Int("items", 870, "quest: item universe size")
		txs    = flag.Int("transactions", 100000, "quest: transaction count")
		avgLen = flag.Int("avglen", 10, "quest: average transaction length")
		patLen = flag.Int("patlen", 4, "quest: average pattern length")
		npat   = flag.Int("patterns", 200, "quest: number of patterns")
		corr   = flag.Float64("corruption", 0.25, "quest: corruption level")
	)
	flag.Parse()
	if *name == "" || *out == "" {
		flag.Usage()
		return fmt.Errorf("-dataset and -out are required")
	}

	var (
		db  *itemset.DB
		err error
	)
	switch *name {
	case "MushRoom":
		db, err = yafim.GenMushroom(*scale, *seed)
	case "T10I4D100K":
		db, err = yafim.GenT10I4D100K(*scale, *seed)
	case "Chess":
		db, err = yafim.GenChess(*scale, *seed)
	case "Pumsb_star":
		db, err = yafim.GenPumsbStar(*scale, *seed)
	case "MedicalCases":
		db, err = yafim.GenMedical(*scale, *seed)
	case "Kosarak":
		db, err = yafim.GenKosarak(*scale, *seed)
	case "Retail":
		db, err = yafim.GenRetail(*scale, *seed)
	case "quest":
		db, err = datagen.Quest(datagen.QuestConfig{
			Items:         *items,
			Transactions:  int(float64(*txs) * *scale),
			AvgTransLen:   *avgLen,
			AvgPatternLen: *patLen,
			NumPatterns:   *npat,
			Corruption:    *corr,
			Seed:          *seed,
		})
	default:
		return fmt.Errorf("unknown dataset %q", *name)
	}
	if err != nil {
		return err
	}
	if err := yafim.SaveFile(db, *out); err != nil {
		return err
	}
	st := db.ComputeStats()
	fmt.Printf("wrote %s: %d transactions, %d items, avg length %.1f (%d bytes)\n",
		*out, st.NumTransactions, st.NumItems, st.AvgLength, db.TotalBytes())
	return nil
}
